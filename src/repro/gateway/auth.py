"""API-key / session authentication and per-tenant quotas.

The gateway is the first surface strangers program against, so it owns
the authnzerver-style split the lcc-server codebase models: a dedicated
auth store (API-key records, session tokens, per-tenant quotas) that
the request handlers consult, never raw credentials in handler code.

* :class:`ApiKey` — a provisioned credential bound to a **tenant** and
  a :class:`Quota`.  Keys are opaque URL-safe secrets; operators issue
  and revoke them out of band (``AuthStore.issue_key``).
* :class:`Session` — the bearer token a successful ``POST /v1/auth``
  returns.  Sessions expire (``session_ttl``) and are looked up on
  every request; an expired or revoked-key session authenticates
  nothing.
* :class:`Quota` — per-tenant limits: a request-rate token bucket
  (REST calls), a page-size clamp, a concurrent-stream cap, and the
  live-stream pacing knobs (events/second bucket + bounded per-socket
  queue) the fan-out hub enforces.
* :class:`AuthStore` — the in-memory registry of all three, plus
  **per-tenant metric scopes**: every tenant gets its own
  ``gateway_tenant_<name>`` scope in the shared registry
  (:meth:`~repro.metrics.MetricsRegistry.unique_scope`), so one
  ``/metrics`` scrape shows ``repro_gateway_tenant…`` series side by
  side — auth failures, rate-limited requests, shed events — which is
  what the stock gateway alert rules watch.

Clocks are injectable (:class:`~repro.util.clock.Clock`) so expiry and
rate-limit boundaries are testable on a :class:`ManualClock`.
"""

from __future__ import annotations

import hmac
import secrets
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ReproError
from repro.metrics.registry import MetricsRegistry, ScopedRegistry
from repro.util.clock import Clock, WallClock
from repro.util.tokens import TokenBucket

__all__ = [
    "ApiKey",
    "AuthError",
    "AuthStore",
    "Quota",
    "QuotaExceeded",
    "Session",
]


class AuthError(ReproError):
    """Authentication failed (unknown key, bad/expired token)."""

    status = 401


class QuotaExceeded(ReproError):
    """A per-tenant quota rejected the request."""

    status = 429


@dataclass(frozen=True)
class Quota:
    """Per-tenant limits the gateway enforces.

    requests_per_sec / request_burst:
        Token bucket over REST calls (``/v1/events``, ``/v1/stats``).
        An empty bucket means HTTP 429.
    max_page_size:
        Upper clamp on the ``limit`` of one ``/v1/events`` page.
    max_streams:
        Concurrent WebSocket streams the tenant may hold open.
    stream_events_per_sec / stream_burst:
        Token bucket over events delivered to **each** of the tenant's
        stream sockets; events beyond the rate are shed (counted, never
        queued unboundedly).
    stream_queue:
        Bounded per-socket queue depth between the fan-out hub and the
        socket writer; a full queue sheds instead of stalling the hub.
    """

    requests_per_sec: float = 50.0
    request_burst: float = 100.0
    max_page_size: int = 1024
    max_streams: int = 64
    stream_events_per_sec: float = 50_000.0
    stream_burst: float = 100_000.0
    stream_queue: int = 1024

    def __post_init__(self) -> None:
        if self.max_page_size < 1:
            raise ValueError(
                f"max_page_size must be >= 1: {self.max_page_size}"
            )
        if self.max_streams < 0:
            raise ValueError(f"max_streams must be >= 0: {self.max_streams}")
        if self.stream_queue < 1:
            raise ValueError(
                f"stream_queue must be >= 1: {self.stream_queue}"
            )


@dataclass
class ApiKey:
    """One provisioned credential (tenant + quota + enable flag)."""

    key: str
    tenant: str
    quota: Quota = field(default_factory=Quota)
    enabled: bool = True


@dataclass(frozen=True)
class Session:
    """A live bearer token minted by ``POST /v1/auth``."""

    token: str
    tenant: str
    quota: Quota
    key: str
    expires_at: float


class AuthStore:
    """Keys, sessions, per-tenant request buckets and metric scopes.

    Thread-safe: the asyncio request handlers, the fan-out hub's
    publish thread, and operator provisioning calls may all touch it
    concurrently.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
        session_ttl: float = 3600.0,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.clock = clock or WallClock()
        self.session_ttl = session_ttl
        self._lock = threading.Lock()
        self._keys: Dict[str, ApiKey] = {}
        self._sessions: Dict[str, Session] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._tenant_metrics: Dict[str, ScopedRegistry] = {}

    # -- provisioning --------------------------------------------------------

    def issue_key(
        self,
        tenant: str,
        quota: Optional[Quota] = None,
        key: Optional[str] = None,
    ) -> ApiKey:
        """Provision an API key for *tenant* (generated unless given)."""
        if not tenant:
            raise ValueError("tenant must be non-empty")
        record = ApiKey(
            key=key or secrets.token_urlsafe(24),
            tenant=tenant,
            quota=quota or Quota(),
        )
        with self._lock:
            if record.key in self._keys:
                raise ValueError("key already issued")
            self._keys[record.key] = record
        self.tenant_metrics(tenant)  # reserve the scope eagerly
        return record

    def revoke_key(self, key: str) -> bool:
        """Disable *key* and kill its live sessions (True if it existed)."""
        with self._lock:
            record = self._keys.get(key)
            if record is None:
                return False
            record.enabled = False
            self._sessions = {
                token: session
                for token, session in self._sessions.items()
                if session.key != key
            }
            return True

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted({record.tenant for record in self._keys.values()})

    # -- per-tenant metrics --------------------------------------------------

    def tenant_metrics(self, tenant: str) -> ScopedRegistry:
        """The tenant's metric scope (``gateway_tenant_<name>``),
        reserved via ``unique_scope`` on first use so two tenants can
        never alias one series."""
        with self._lock:
            scoped = self._tenant_metrics.get(tenant)
            if scoped is None:
                scope = self.registry.unique_scope(f"gateway_tenant_{tenant}")
                scoped = self._tenant_metrics[tenant] = self.registry.scoped(
                    scope
                )
            return scoped

    # -- authentication ------------------------------------------------------

    def _find_key(self, key: str) -> Optional[ApiKey]:
        """Constant-time key lookup (no early exit on prefix match)."""
        found = None
        for candidate, record in self._keys.items():
            if hmac.compare_digest(candidate, key):
                found = record
        return found

    def authenticate(self, key: str) -> Session:
        """Exchange an API key for a session token (or raise AuthError)."""
        with self._lock:
            record = self._find_key(key)
            if record is None or not record.enabled:
                raise AuthError("unknown or disabled API key")
            session = Session(
                token=secrets.token_urlsafe(24),
                tenant=record.tenant,
                quota=record.quota,
                key=record.key,
                expires_at=self.clock.now() + self.session_ttl,
            )
            self._sessions[session.token] = session
        self.tenant_metrics(record.tenant).counter("auth_ok").inc()
        return session

    def session(self, token: Optional[str]) -> Session:
        """The live session behind *token* (or raise AuthError)."""
        if not token:
            raise AuthError("missing bearer token")
        with self._lock:
            session = self._sessions.get(token)
            if session is None:
                raise AuthError("unknown session token")
            if self.clock.now() >= session.expires_at:
                del self._sessions[token]
                raise AuthError("session expired")
            record = self._keys.get(session.key)
            if record is None or not record.enabled:
                raise AuthError("API key revoked")
        return session

    def check_request(self, token: Optional[str]) -> Session:
        """Authenticate *token* and spend one request-quota token.

        Raises :class:`AuthError` (→ 401) or :class:`QuotaExceeded`
        (→ 429); on success returns the session and counts the request
        in the tenant's metric scope.
        """
        session = self.session(token)
        bucket = self._request_bucket(session)
        metrics = self.tenant_metrics(session.tenant)
        if not bucket.take():
            metrics.counter("rate_limited").inc()
            raise QuotaExceeded(
                f"tenant {session.tenant!r} exceeded "
                f"{session.quota.requests_per_sec:g} requests/s"
            )
        metrics.counter("requests").inc()
        return session

    def _request_bucket(self, session: Session) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(session.tenant)
            if bucket is None:
                bucket = self._buckets[session.tenant] = TokenBucket(
                    rate=session.quota.requests_per_sec,
                    burst=session.quota.request_burst,
                    clock=self.clock,
                )
            return bucket

    def auth_failure(self, tenant: Optional[str] = None) -> None:
        """Count one failed authentication (tenant-scoped when known)."""
        if tenant is not None:
            self.tenant_metrics(tenant).counter("auth_failures").inc()
