"""The live fan-out hub: one internal consumer, N tenant WebSockets.

The cluster publishes each event exactly once; the gateway must hand
it to every subscribed tenant socket whose filter matches, without one
slow tenant stalling the rest.  The hub is that junction:

* **One inbound path** — the gateway's internal cluster consumer calls
  :meth:`StreamHub.publish_entries` from its poll thread with each
  fresh (post-watermark-dedup) batch and its shard label.
* **Push-down matching** — every subscription's filter is compiled
  into the shared :class:`~repro.ripple.index.RuleIndex`
  (:mod:`repro.gateway.filters`), so one trie walk per event finds the
  interested subscribers; tenants watching other subtrees cost
  nothing.  Matched events are serialised **once** — one JSON body,
  one WebSocket frame — and the same bytes are offered to every
  matched subscriber.
* **Per-subscriber pacing + shedding** — each subscriber owns a
  bounded queue and a token bucket built from its tenant's
  :class:`~repro.gateway.auth.Quota`.  An empty bucket or a full queue
  **sheds the event for that subscriber only** (counted in the
  subscriber's ``shed``, the tenant's ``stream_shed`` and the
  gateway's ``stream_shed``) — the hub never blocks, so the publish
  thread and every other tenant keep flowing.
* **Thread → asyncio wakeup** — the publish thread appends under the
  subscriber's lock and wakes its writer coroutine via
  ``loop.call_soon_threadsafe``; the writer drains whole runs per
  wakeup (one ``drain()`` per scheduling round, not per event).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.events import FileEvent
from repro.gateway.auth import Quota
from repro.gateway.filters import SubscriptionFilter
from repro.gateway.http import OP_TEXT, encode_frame
from repro.metrics.registry import ScopedRegistry
from repro.ripple.index import RuleIndex, eval_pressure
from repro.util.clock import Clock
from repro.util.tokens import TokenBucket

__all__ = ["StreamHub", "StreamSubscriber"]


def stream_message(
    seq: int, event: FileEvent, shard: Optional[str]
) -> bytes:
    """One serialised stream payload (shared by every subscriber)."""
    return json.dumps(
        {"shard": shard, "seq": seq, "event": event.to_dict()},
        separators=(",", ":"),
    ).encode("utf-8")


class StreamSubscriber:
    """One tenant WebSocket's slot in the hub.

    The publish thread calls :meth:`offer`; the socket's writer
    coroutine awaits :meth:`wait` and calls :meth:`drain`.  All shared
    state sits behind the subscriber's own lock, so subscribers never
    contend with each other.
    """

    def __init__(
        self,
        tenant: str,
        filt: SubscriptionFilter,
        quota: Quota,
        tenant_metrics: Optional[ScopedRegistry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.tenant = tenant
        self.filter = filt
        self.rule = filt.to_rule()
        self.capacity = quota.stream_queue
        self.bucket = TokenBucket(
            rate=quota.stream_events_per_sec,
            burst=quota.stream_burst,
            clock=clock,
        )
        self._tenant_metrics = tenant_metrics
        self._lock = threading.Lock()
        self._queue: List[bytes] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self.closed = False
        #: Events handed to this socket's queue / shed at its door.
        self.delivered = 0
        self.shed = 0

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the writer side (called from the event loop)."""
        self._loop = loop
        self._wake = asyncio.Event()

    # -- publish side (any thread) ------------------------------------------

    def offer(self, payload: bytes) -> bool:
        """Queue *payload* for this socket; False (and shed) when over
        rate or over the bounded queue."""
        with self._lock:
            if self.closed:
                return False
            if len(self._queue) >= self.capacity or not self.bucket.take():
                self.shed += 1
                if self._tenant_metrics is not None:
                    self._tenant_metrics.counter("stream_shed").inc()
                return False
            self._queue.append(payload)
            self.delivered += 1
            loop, wake = self._loop, self._wake
        if self._tenant_metrics is not None:
            self._tenant_metrics.counter("events_delivered").inc()
        if loop is not None and wake is not None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop shut down mid-publish; the socket is gone
        return True

    # -- writer side (event loop) -------------------------------------------

    def drain(self) -> List[bytes]:
        """Take everything queued (and reset the wakeup)."""
        with self._lock:
            run, self._queue = self._queue, []
            if self._wake is not None:
                self._wake.clear()
            return run

    async def wait(self, timeout: float = 0.5) -> bool:
        """Await a wakeup (bounded, so close/stop are noticed)."""
        if self._wake is None:
            await asyncio.sleep(timeout)
            return False
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._queue = []

    @property
    def depth(self) -> int:
        return len(self._queue)


class StreamHub:
    """Filter-indexed fan-out from the cluster stream to subscribers."""

    def __init__(
        self,
        metrics: ScopedRegistry,
        clock: Optional[Clock] = None,
    ) -> None:
        self.metrics = metrics
        self.clock = clock
        self._lock = threading.Lock()
        self._index = RuleIndex()
        self._subscribers: Dict[int, StreamSubscriber] = {}
        self._delivered = metrics.counter("stream_delivered")
        self._shed = metrics.counter("stream_shed")
        self._published = metrics.counter("stream_published")
        metrics.gauge_fn("stream_clients", lambda: len(self._subscribers))
        # Push-down index health for telemetry scrapes: the hub shares
        # the ripple_* family with the agents so one alert rule covers
        # both consumers of the fused automaton.
        metrics.gauge_fn("ripple_rules_indexed", lambda: len(self._index))
        metrics.gauge_fn(
            "ripple_candidates_considered",
            lambda: self._index.candidates_considered,
        )
        metrics.gauge_fn(
            "ripple_rules_evaluated", lambda: self._index.rules_evaluated
        )
        metrics.gauge_fn(
            "ripple_program_recompiles",
            lambda: self._index.program_recompiles,
        )
        metrics.gauge_fn(
            "ripple_eval_pressure", lambda: eval_pressure(self._index)
        )

    def __len__(self) -> int:
        return len(self._subscribers)

    def subscribers(self) -> List[StreamSubscriber]:
        with self._lock:
            return list(self._subscribers.values())

    def subscribe(
        self,
        tenant: str,
        filt: SubscriptionFilter,
        quota: Quota,
        tenant_metrics: Optional[ScopedRegistry] = None,
    ) -> StreamSubscriber:
        """Register a socket's subscription (filter into the index)."""
        subscriber = StreamSubscriber(
            tenant, filt, quota, tenant_metrics, clock=self.clock
        )
        with self._lock:
            self._index.add(subscriber.rule)
            self._subscribers[subscriber.rule.rule_id] = subscriber
        return subscriber

    def unsubscribe(self, subscriber: StreamSubscriber) -> None:
        subscriber.close()
        with self._lock:
            if self._subscribers.pop(subscriber.rule.rule_id, None) is not None:
                self._index.remove(subscriber.rule)

    def streams_for(self, tenant: str) -> int:
        """Open subscriptions held by *tenant* (quota enforcement)."""
        with self._lock:
            return sum(
                1
                for sub in self._subscribers.values()
                if sub.tenant == tenant
            )

    # -- fan-out -------------------------------------------------------------

    def publish_entries(
        self,
        entries: List[Tuple[int, FileEvent]],
        source: Optional[str] = None,
    ) -> int:
        """Fan one fresh batch out to every matching subscriber.

        Called by the gateway's internal cluster consumer (its
        ``batch_callback``); *source* is the publishing shard's label.
        Returns the number of (event, subscriber) deliveries.
        """
        if not entries:
            return 0
        with self._lock:
            if not self._subscribers:
                self._published.inc(len(entries))
                return 0
            matches = self._index.matching_batch(
                [event for _seq, event in entries]
            )
            subscribers = dict(self._subscribers)
        self._published.inc(len(entries))
        delivered = 0
        shed_before = sum(s.shed for s in subscribers.values())
        for (seq, event), (_event, rules) in zip(entries, matches):
            if not rules:
                continue
            payload: Optional[bytes] = None
            frame: Optional[bytes] = None
            for rule in rules:
                subscriber = subscribers.get(rule.rule_id)
                if subscriber is None:
                    continue
                if frame is None:
                    # Serialise once per event, share across subscribers.
                    payload = stream_message(seq, event, source)
                    frame = encode_frame(OP_TEXT, payload)
                if subscriber.offer(frame):
                    delivered += 1
        self._delivered.inc(delivered)
        shed_now = sum(s.shed for s in subscribers.values())
        if shed_now > shed_before:
            self._shed.inc(shed_now - shed_before)
        return delivered

    def publish_event(
        self, seq: int, event: FileEvent, source: Optional[str] = None
    ) -> int:
        return self.publish_entries([(seq, event)], source)

    def close(self) -> None:
        with self._lock:
            subscribers = list(self._subscribers.values())
            self._subscribers.clear()
            self._index = RuleIndex()
        for subscriber in subscribers:
            subscriber.close()
