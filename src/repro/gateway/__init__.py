"""The multi-tenant gateway: the cluster's HTTP/WebSocket front door.

The paper's premise is cyberinfrastructure users *program against*;
this package is the service tier that makes the sharded monitor
programmable from outside the process: API-key auth with per-tenant
quotas (:mod:`~repro.gateway.auth`), cursor-paged historic queries
with server-side filter push-down, and live WebSocket fan-out with
slow-consumer shedding (:mod:`~repro.gateway.hub`) — all on stdlib
asyncio (:mod:`~repro.gateway.http`), supervised like every other
service (:mod:`~repro.gateway.server`), observable through the same
telemetry plane.
"""

from repro.gateway.auth import (
    ApiKey,
    AuthError,
    AuthStore,
    Quota,
    QuotaExceeded,
    Session,
)
from repro.gateway.filters import (
    FilterIndexCache,
    SubscriptionFilter,
    parse_filter,
)
from repro.gateway.hub import StreamHub, StreamSubscriber
from repro.gateway.server import GatewayConfig, GatewayServer, attach_gateway
from repro.gateway.wsclient import (
    GatewayClient,
    GatewayClientError,
    StreamRejected,
    WsStream,
)

__all__ = [
    "ApiKey",
    "AuthError",
    "AuthStore",
    "FilterIndexCache",
    "GatewayClient",
    "GatewayClientError",
    "GatewayConfig",
    "GatewayServer",
    "Quota",
    "QuotaExceeded",
    "Session",
    "StreamHub",
    "StreamRejected",
    "StreamSubscriber",
    "SubscriptionFilter",
    "WsStream",
    "attach_gateway",
    "parse_filter",
]
