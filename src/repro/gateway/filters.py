"""Tenant subscription filters, compiled through the rule engine.

A gateway filter — "events under ``/proj/alice`` of type created/
modified whose name matches ``*.h5``" — is exactly the *If* half of a
Ripple rule, so instead of a second matching engine the gateway
compiles each filter into a :class:`~repro.ripple.rules.Rule` and
pushes it into the existing :class:`~repro.ripple.index.RuleIndex`.
That buys the trie's pruning for free: with hundreds of tenants
subscribed to disjoint subtrees, fan-out matching walks each event's
path once and only evaluates the filters that can possibly match —
the **server-side filter push-down** the tentpole names.

:meth:`SubscriptionFilter.matches` is the reference linear semantics
(one plain ``Trigger.matches`` evaluation).  The property test pins
indexed pruning byte-identical to this linear sweep, mirroring the
``matching`` ≡ ``matching_linear`` discipline in ``repro.ripple``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.core.events import EventType, FileEvent
from repro.ripple.index import RuleIndex
from repro.ripple.rules import Action, Rule, Trigger
from repro.util.paths import normalize

__all__ = ["FilterIndexCache", "SubscriptionFilter", "parse_filter"]

#: The agent id gateway filter rules are registered under — the
#: RuleIndex is agent-agnostic, but Trigger requires one.
GATEWAY_AGENT = "gateway"


@dataclass(frozen=True)
class SubscriptionFilter:
    """One tenant's event filter (REST query or stream subscription)."""

    path_prefix: str = "/"
    event_types: Optional[FrozenSet[EventType]] = None  # None = all types
    name_pattern: str = "*"
    include_directories: bool = True

    def to_rule(self) -> Rule:
        """This filter as a rule (trigger = the filter, action inert)."""
        return Rule(
            trigger=Trigger(
                agent_id=GATEWAY_AGENT,
                path_prefix=self.path_prefix,
                event_types=(
                    frozenset(EventType)
                    if self.event_types is None
                    else self.event_types
                ),
                name_pattern=self.name_pattern,
                include_directories=self.include_directories,
            ),
            action=Action(action_type="callable", agent_id=GATEWAY_AGENT),
            name="gateway-filter",
        )

    def matches(self, event: FileEvent) -> bool:
        """Reference linear semantics (what a client-side filter does)."""
        return self._trigger.matches(event)

    @property
    def _trigger(self) -> Trigger:
        trigger = getattr(self, "_cached_trigger", None)
        if trigger is None:
            trigger = self.to_rule().trigger
            object.__setattr__(self, "_cached_trigger", trigger)
        return trigger

    def describe(self) -> str:
        types = (
            "*"
            if self.event_types is None
            else "/".join(sorted(t.value for t in self.event_types))
        )
        return (
            f"{types} of {self.name_pattern!r} under {self.path_prefix}"
        )


class FilterIndexCache:
    """LRU of compiled single-filter rule indexes, shared across requests.

    Every ``/v1/events`` request used to pay a fresh single-rule
    :class:`~repro.ripple.index.RuleIndex` construction (trigger
    validation, prefix normalization, pattern compilation, trie build)
    before scanning a page.  Tenants overwhelmingly re-issue the same
    filter — paging through a window re-sends identical query params
    every page — so the gateway keys compiled indexes on the
    *normalized* filter parameters and reuses them.  ``hits``/``misses``
    make the reuse observable (the gateway bench asserts on them).

    Thread-safety: lookups take a small lock; the cached indexes
    themselves are only matched from the gateway's event-loop thread.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, RuleIndex]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(filt: SubscriptionFilter) -> tuple:
        return (
            normalize(filt.path_prefix),
            filt.event_types,
            filt.name_pattern,
            filt.include_directories,
        )

    def get(self, filt: SubscriptionFilter) -> Tuple[RuleIndex, bool]:
        """The compiled index for *filt* plus whether it was a hit."""
        key = self._key(filt)
        with self._lock:
            index = self._entries.get(key)
            if index is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return index, True
            self.misses += 1
        # Compile outside the lock: construction touches the rule layer.
        index = RuleIndex([filt.to_rule()])
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                return cached, True
            self._entries[key] = index
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return index, False


def parse_filter(
    prefix: Optional[str] = None,
    types: Optional[str] = None,
    pattern: Optional[str] = None,
    include_directories: Optional[str] = None,
) -> SubscriptionFilter:
    """Build a filter from raw query parameters (REST and WS share it).

    *types* is a comma-separated list of :class:`EventType` values
    (``created,modified``); unknown types raise ``ValueError`` so the
    handler can answer 400 instead of silently matching nothing.
    """
    parsed_types: Optional[FrozenSet[EventType]] = None
    if types:
        parsed_types = frozenset(
            EventType(value.strip()) for value in types.split(",") if value.strip()
        )
        if not parsed_types:
            parsed_types = None
    include = True
    if include_directories is not None:
        include = include_directories.lower() not in ("0", "false", "no")
    return SubscriptionFilter(
        path_prefix=prefix or "/",
        event_types=parsed_types,
        name_pattern=pattern or "*",
        include_directories=include,
    )
