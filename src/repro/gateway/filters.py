"""Tenant subscription filters, compiled through the rule engine.

A gateway filter — "events under ``/proj/alice`` of type created/
modified whose name matches ``*.h5``" — is exactly the *If* half of a
Ripple rule, so instead of a second matching engine the gateway
compiles each filter into a :class:`~repro.ripple.rules.Rule` and
pushes it into the existing :class:`~repro.ripple.index.RuleIndex`.
That buys the trie's pruning for free: with hundreds of tenants
subscribed to disjoint subtrees, fan-out matching walks each event's
path once and only evaluates the filters that can possibly match —
the **server-side filter push-down** the tentpole names.

:meth:`SubscriptionFilter.matches` is the reference linear semantics
(one plain ``Trigger.matches`` evaluation).  The property test pins
indexed pruning byte-identical to this linear sweep, mirroring the
``matching`` ≡ ``matching_linear`` discipline in ``repro.ripple``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.events import EventType, FileEvent
from repro.ripple.rules import Action, Rule, Trigger

__all__ = ["SubscriptionFilter", "parse_filter"]

#: The agent id gateway filter rules are registered under — the
#: RuleIndex is agent-agnostic, but Trigger requires one.
GATEWAY_AGENT = "gateway"


@dataclass(frozen=True)
class SubscriptionFilter:
    """One tenant's event filter (REST query or stream subscription)."""

    path_prefix: str = "/"
    event_types: Optional[FrozenSet[EventType]] = None  # None = all types
    name_pattern: str = "*"
    include_directories: bool = True

    def to_rule(self) -> Rule:
        """This filter as a rule (trigger = the filter, action inert)."""
        return Rule(
            trigger=Trigger(
                agent_id=GATEWAY_AGENT,
                path_prefix=self.path_prefix,
                event_types=(
                    frozenset(EventType)
                    if self.event_types is None
                    else self.event_types
                ),
                name_pattern=self.name_pattern,
                include_directories=self.include_directories,
            ),
            action=Action(action_type="callable", agent_id=GATEWAY_AGENT),
            name="gateway-filter",
        )

    def matches(self, event: FileEvent) -> bool:
        """Reference linear semantics (what a client-side filter does)."""
        return self._trigger.matches(event)

    @property
    def _trigger(self) -> Trigger:
        trigger = getattr(self, "_cached_trigger", None)
        if trigger is None:
            trigger = self.to_rule().trigger
            object.__setattr__(self, "_cached_trigger", trigger)
        return trigger

    def describe(self) -> str:
        types = (
            "*"
            if self.event_types is None
            else "/".join(sorted(t.value for t in self.event_types))
        )
        return (
            f"{types} of {self.name_pattern!r} under {self.path_prefix}"
        )


def parse_filter(
    prefix: Optional[str] = None,
    types: Optional[str] = None,
    pattern: Optional[str] = None,
    include_directories: Optional[str] = None,
) -> SubscriptionFilter:
    """Build a filter from raw query parameters (REST and WS share it).

    *types* is a comma-separated list of :class:`EventType` values
    (``created,modified``); unknown types raise ``ValueError`` so the
    handler can answer 400 instead of silently matching nothing.
    """
    parsed_types: Optional[FrozenSet[EventType]] = None
    if types:
        parsed_types = frozenset(
            EventType(value.strip()) for value in types.split(",") if value.strip()
        )
        if not parsed_types:
            parsed_types = None
    include = True
    if include_directories is not None:
        include = include_directories.lower() not in ("0", "false", "no")
    return SubscriptionFilter(
        path_prefix=prefix or "/",
        event_types=parsed_types,
        name_pattern=pattern or "*",
        include_directories=include,
    )
