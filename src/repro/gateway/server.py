"""GatewayServer: the asyncio HTTP/WebSocket front door to a cluster.

The paper's end state is cyberinfrastructure *many users program
against*; until now the monitor's API surface was in-process
(``MonitorClient``/``ClusterClient``).  The gateway is the service
tier in front of the cluster — one supervised
:class:`~repro.runtime.Service` owning an asyncio event loop, speaking
the minimal HTTP/1.1 + RFC-6455 vocabulary in
:mod:`repro.gateway.http`:

``POST /v1/auth``
    API key → session bearer token (:mod:`repro.gateway.auth`).
``GET /v1/events``
    Cursor-paged historic queries with **server-side filter
    push-down**: the tenant's filter is compiled through the existing
    :class:`~repro.ripple.index.RuleIndex` and pruned *before*
    serialisation, and the opaque ``(shard, seq)``-watermark cursor
    (:mod:`repro.cluster.client`) makes every page resumable.
``GET /v1/stats``
    Gateway + per-tenant + cluster counters.
``GET /health``
    Gateway health composed with the cluster supervision tree
    (503 when degraded), mirroring the telemetry plane's probe.
``WS /v1/stream``
    Live fan-out through the :class:`~repro.gateway.hub.StreamHub`:
    per-tenant token buckets, bounded per-socket queues,
    slow-consumer shedding.

Cluster access goes through the
:class:`~repro.cluster.client.AsyncClusterClient` facade (blocking
scatter-gather on the default executor), so one stuck shard request
never freezes the loop's other connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

from repro.cluster.client import (
    ClusterClient,
    decode_cursor,
    encode_cursor,
)
from repro.errors import ReproError
from repro.gateway.auth import AuthError, AuthStore, QuotaExceeded, Session
from repro.gateway.filters import (
    FilterIndexCache,
    SubscriptionFilter,
    parse_filter,
)
from repro.gateway.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    FrameParser,
    ProtocolError,
    Request,
    encode_close,
    encode_frame,
    read_request,
    render_response,
    render_upgrade,
)
from repro.gateway.hub import StreamHub
from repro.metrics.registry import MetricsRegistry
from repro.runtime.service import Service, WorkerSpec
from repro.util.logging import get_logger

__all__ = ["GatewayConfig", "GatewayServer", "attach_gateway"]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway service knobs.

    fetch_page:
        Raw events fetched from the cluster per scatter-gather round
        while filling one filtered ``/v1/events`` page.
    max_scan:
        Upper bound on raw events scanned for a single request — a
        selective filter over a huge window answers with a resumable
        cursor instead of scanning retention unboundedly.
    """

    host: str = "127.0.0.1"
    port: int = 0
    session_ttl: float = 3600.0
    default_page: int = 256
    fetch_page: int = 512
    max_scan: int = 100_000
    request_timeout: float = 10.0
    stream_wait: float = 0.25

    def __post_init__(self) -> None:
        if self.fetch_page < 1 or self.default_page < 1:
            raise ValueError("page sizes must be >= 1")


class GatewayServer(Service):
    """Supervised asyncio HTTP/WS service in front of a cluster.

    The listening socket is bound in the constructor so ``port`` is
    readable before ``start()`` (the telemetry-server idiom); the
    worker thread then owns a private event loop for the service's
    lifetime.
    """

    def __init__(
        self,
        cluster_client: ClusterClient,
        auth: Optional[AuthStore] = None,
        config: Optional[GatewayConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        health_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
        name: str = "gateway",
    ) -> None:
        super().__init__(name, registry, scope="gateway")
        self.config = config or GatewayConfig()
        self.client = cluster_client
        self.aclient = cluster_client.as_async()
        self.auth = auth or AuthStore(
            registry=self.metrics.registry,
            session_ttl=self.config.session_ttl,
        )
        self.health_provider = health_provider
        self.hub = StreamHub(self.metrics, clock=self.auth.clock)
        self.log = get_logger(f"gateway.{name}")
        # Request-surface counters (gateway scope in the shared registry).
        self._requests = self.metrics.counter("requests")
        self._request_errors = self.metrics.counter("request_errors")
        self._auth_ok = self.metrics.counter("auth_ok")
        self._auth_failures = self.metrics.counter("auth_failures")
        self._rate_limited = self.metrics.counter("rate_limited")
        self._pages_served = self.metrics.counter("pages_served")
        self._events_scanned = self.metrics.counter("events_scanned")
        self._events_returned = self.metrics.counter("events_returned")
        self._ws_connects = self.metrics.counter("ws_connects")
        self._ws_rejects = self.metrics.counter("ws_rejects")
        #: Compiled-filter reuse across /v1/events requests (LRU keyed
        #: on normalized query params; see FilterIndexCache).
        self._filter_cache = FilterIndexCache()
        self._filter_cache_hits = self.metrics.counter("filter_cache_hits")
        self._filter_cache_misses = self.metrics.counter("filter_cache_misses")
        self.metrics.gauge_fn(
            "filter_cache_size", lambda: len(self._filter_cache)
        )
        self._sock: Optional[socket.socket] = None
        self._bind()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: set = set()
        #: Set once the loop is accepting connections (start barrier).
        self.ready = threading.Event()

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, getattr(self, "port", None) or self.config.port))
        sock.listen(256)
        self.host, self.port = sock.getsockname()[:2]
        self._sock = sock

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- service plumbing ----------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("loop", self._loop_step)]

    def _loop_step(self) -> int:
        if self._sock is None:
            # A previous serve cycle consumed the socket; rebind the
            # same port so a supervisor restart keeps the address.
            self._bind()
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            self._loop = None
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()
        return 1

    async def _serve(self) -> None:
        server = await asyncio.start_server(self._handle_conn, sock=self._sock)
        self.ready.set()
        try:
            while not self._halt.is_set():
                await asyncio.sleep(0.02)
        finally:
            self.ready.clear()
            server.close()
            self._sock = None  # closed with the server; rebind on restart
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            with contextlib.suppress(Exception):
                await server.wait_closed()

    def start(self) -> None:
        super().start()
        # Callers (tests, demo, supervisor siblings) may connect the
        # moment start() returns; wait for the accept loop.
        self.ready.wait(timeout=5.0)

    def on_close(self) -> None:
        self.hub.close()
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None
        self.client.close()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=self.config.request_timeout
                )
            except (ProtocolError, asyncio.IncompleteReadError) as exc:
                self._request_errors.inc()
                await self._respond(
                    writer, 400, {"error": f"bad request: {exc}"}
                )
                return
            except asyncio.TimeoutError:
                self._request_errors.inc()
                return
            if request is None:
                return
            self._requests.inc()
            if request.path == "/v1/stream" and request.wants_websocket:
                await self._handle_stream(request, reader, writer)
                return
            status, payload = await self._dispatch(request)
            await self._respond(writer, status, payload)
        except asyncio.CancelledError:
            # Shutdown cancelled this connection; finish quietly so the
            # server task gathering us doesn't log a phantom error.
            return
        except Exception as exc:
            self._request_errors.inc()
            self.log.warning(
                "request failed: %s: %s", type(exc).__name__, exc
            )
            with contextlib.suppress(Exception):
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        writer.write(render_response(status, body))
        await writer.drain()

    # -- REST routes ---------------------------------------------------------

    async def _dispatch(self, request: Request) -> Tuple[int, Any]:
        path, method = request.path, request.method
        if path == "/v1/auth":
            if method != "POST":
                return 405, {"error": "POST only"}
            return self._route_auth(request)
        if path == "/v1/events":
            if method != "GET":
                return 405, {"error": "GET only"}
            return await self._route_events(request)
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return await self._route_stats(request)
        if path == "/health":
            return self._route_health()
        if path == "/":
            return 200, {
                "service": "repro-gateway",
                "routes": [
                    "POST /v1/auth",
                    "GET /v1/events",
                    "GET /v1/stats",
                    "WS /v1/stream",
                    "GET /health",
                ],
            }
        return 404, {"error": f"no route {path!r}"}

    def _route_auth(self, request: Request) -> Tuple[int, Any]:
        try:
            data = json.loads(request.body or b"{}")
        except ValueError:
            return 400, {"error": "body must be JSON"}
        key = data.get("key") if isinstance(data, dict) else None
        if not isinstance(key, str) or not key:
            return 400, {"error": 'body must be {"key": "..."}'}
        try:
            session = self.auth.authenticate(key)
        except AuthError as exc:
            self._auth_failures.inc()
            return 401, {"error": str(exc)}
        self._auth_ok.inc()
        return 200, {
            "token": session.token,
            "tenant": session.tenant,
            "expires_at": session.expires_at,
        }

    def _authorize(self, request: Request) -> Session:
        try:
            return self.auth.check_request(request.bearer_token())
        except AuthError:
            self._auth_failures.inc()
            raise
        except QuotaExceeded:
            self._rate_limited.inc()
            raise

    @staticmethod
    def _error_status(exc: ReproError) -> int:
        return getattr(exc, "status", 500)

    async def _route_events(self, request: Request) -> Tuple[int, Any]:
        try:
            session = self._authorize(request)
        except (AuthError, QuotaExceeded) as exc:
            return self._error_status(exc), {"error": str(exc)}
        try:
            filt = parse_filter(
                prefix=request.query.get("prefix"),
                types=request.query.get("types"),
                pattern=request.query.get("pattern"),
                include_directories=request.query.get("dirs"),
            )
        except (ValueError, ReproError) as exc:
            return 400, {"error": f"bad filter: {exc}"}
        try:
            limit = int(request.query.get("limit", self.config.default_page))
        except ValueError:
            return 400, {"error": "limit must be an integer"}
        limit = max(1, min(limit, session.quota.max_page_size))
        cursor = request.query.get("cursor")
        try:
            entries, next_cursor, exhausted, scanned = (
                await self._filtered_page(filt, cursor, limit)
            )
        except ValueError as exc:  # malformed / foreign cursor
            return 400, {"error": str(exc)}
        self._pages_served.inc()
        self._events_scanned.inc(scanned)
        self._events_returned.inc(len(entries))
        tenant_metrics = self.auth.tenant_metrics(session.tenant)
        tenant_metrics.counter("events_returned").inc(len(entries))
        return 200, {
            "events": [
                {"shard": shard, "seq": seq, "event": event.to_dict()}
                for shard, seq, event in entries
            ],
            "cursor": next_cursor,
            "exhausted": exhausted,
            "matched": len(entries),
            "scanned": scanned,
        }

    async def _filtered_page(
        self,
        filt: SubscriptionFilter,
        cursor: Optional[str],
        limit: int,
    ) -> Tuple[list, str, bool, int]:
        """Fill one filtered page, pruning through the rule index.

        The filter compiles to a single-rule
        :class:`~repro.ripple.index.RuleIndex` and raw cluster pages
        are pruned via ``matching_batch`` — the same compiled path the
        fan-out hub and the Ripple agents use — **before** any event
        is serialised.  Compiled indexes are LRU-cached on the
        normalized filter params, so paging through a window (or many
        tenants sharing one filter shape) pays construction once.  The
        returned cursor reflects exactly the raw events consumed, so a
        resume never skips or repeats.
        """
        index, hit = self._filter_cache.get(filt)
        (self._filter_cache_hits if hit else self._filter_cache_misses).inc()
        resumed = decode_cursor(cursor, self.client.shard_ids)
        watermarks = {
            shard_id: resumed.get(shard_id, 0)
            for shard_id in self.client.shard_ids
        }
        out: list = []
        scanned = 0
        exhausted = False
        while len(out) < limit and scanned < self.config.max_scan:
            page = await self.aclient.page(
                encode_cursor(watermarks), limit=self.config.fetch_page
            )
            if not page.entries:
                exhausted = page.exhausted
                break
            matches = index.matching_batch(
                [event for _shard, _seq, event in page.entries]
            )
            limit_hit = False
            for (shard, seq, event), (_event, rules) in zip(
                page.entries, matches
            ):
                scanned += 1
                if seq > watermarks.get(shard, 0):
                    watermarks[shard] = seq
                if rules:
                    out.append((shard, seq, event))
                    if len(out) >= limit:
                        limit_hit = True
                        break
            if limit_hit:
                break
            if page.exhausted:
                exhausted = True
                break
        return out, encode_cursor(watermarks), exhausted, scanned

    async def _route_stats(self, request: Request) -> Tuple[int, Any]:
        try:
            self._authorize(request)
        except (AuthError, QuotaExceeded) as exc:
            return self._error_status(exc), {"error": str(exc)}
        cluster = await self.aclient.stats()
        return 200, {
            "gateway": self.metrics.snapshot(),
            "tenants": {
                tenant: self.auth.tenant_metrics(tenant).snapshot()
                for tenant in self.auth.tenants()
            },
            "streams": [
                {
                    "tenant": sub.tenant,
                    "filter": sub.filter.describe(),
                    "delivered": sub.delivered,
                    "shed": sub.shed,
                    "depth": sub.depth,
                }
                for sub in self.hub.subscribers()
            ],
            "cluster": cluster.get("totals", {}),
        }

    def _route_health(self) -> Tuple[int, Any]:
        """Gateway health composed with the cluster supervision tree."""
        payload: dict[str, Any] = {"gateway": self.health()}
        degraded = self.crashed
        if self.health_provider is not None:
            cluster = dict(self.health_provider())
            payload["cluster"] = cluster
            services = cluster.get("services") or {}
            degraded = degraded or cluster.get("state") == "crashed" or any(
                isinstance(record, Mapping)
                and record.get("state") == "crashed"
                for record in services.values()
            )
        payload["degraded"] = degraded
        return (503 if degraded else 200), payload

    # -- live streams --------------------------------------------------------

    async def _handle_stream(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            session = self._authorize(request)
        except (AuthError, QuotaExceeded) as exc:
            self._ws_rejects.inc()
            await self._respond(writer, self._error_status(exc), {"error": str(exc)})
            return
        try:
            filt = parse_filter(
                prefix=request.query.get("prefix"),
                types=request.query.get("types"),
                pattern=request.query.get("pattern"),
                include_directories=request.query.get("dirs"),
            )
        except (ValueError, ReproError) as exc:
            self._ws_rejects.inc()
            await self._respond(writer, 400, {"error": f"bad filter: {exc}"})
            return
        if self.hub.streams_for(session.tenant) >= session.quota.max_streams:
            self._ws_rejects.inc()
            self.auth.tenant_metrics(session.tenant).counter(
                "stream_rejects"
            ).inc()
            await self._respond(
                writer,
                429,
                {
                    "error": (
                        f"tenant {session.tenant!r} at its stream quota "
                        f"({session.quota.max_streams})"
                    )
                },
            )
            return
        key = request.header("sec-websocket-key")
        if not key:
            self._ws_rejects.inc()
            await self._respond(writer, 400, {"error": "missing WS key"})
            return
        # Subscribe BEFORE completing the upgrade: once the client sees
        # 101, its filter is live in the hub — no publish can slip
        # between handshake and registration.
        subscriber = self.hub.subscribe(
            session.tenant,
            filt,
            session.quota,
            self.auth.tenant_metrics(session.tenant),
        )
        subscriber.bind(asyncio.get_running_loop())
        try:
            writer.write(render_upgrade(key))
            await writer.drain()
        except Exception:
            self.hub.unsubscribe(subscriber)
            raise
        self._ws_connects.inc()
        closed = asyncio.Event()
        reader_task = asyncio.get_running_loop().create_task(
            self._ws_reader(reader, writer, closed)
        )
        try:
            while not closed.is_set() and not self._halt.is_set():
                run = subscriber.drain()
                if run:
                    for frame in run:
                        writer.write(frame)
                    await writer.drain()
                else:
                    await subscriber.wait(self.config.stream_wait)
            with contextlib.suppress(Exception):
                writer.write(encode_close())
                await writer.drain()
        finally:
            self.hub.unsubscribe(subscriber)
            reader_task.cancel()
            with contextlib.suppress(BaseException):
                await reader_task

    async def _ws_reader(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        closed: asyncio.Event,
    ) -> None:
        """Drain client frames: answer pings, notice close/EOF."""
        parser = FrameParser()
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
                for opcode, payload in parser.feed(data):
                    if opcode == OP_CLOSE:
                        with contextlib.suppress(Exception):
                            writer.write(encode_close())
                            await writer.drain()
                        return
                    if opcode == OP_PING:
                        writer.write(encode_frame(OP_PONG, payload))
                        await writer.drain()
        except (asyncio.CancelledError, ConnectionError):
            raise
        except Exception:
            pass
        finally:
            closed.set()


def attach_gateway(
    cluster,
    auth: Optional[AuthStore] = None,
    config: Optional[GatewayConfig] = None,
    consumer_name: str = "gateway-feed",
) -> GatewayServer:
    """Wire a gateway onto a :class:`~repro.cluster.ClusterMonitor`.

    Builds the live scatter-gather client, the auth store (sharing the
    cluster's registry so tenant series land in one scrape), the
    internal SUB consumer feeding the fan-out hub, and registers the
    gateway under the cluster's supervisor — call before
    ``cluster.start()`` so the supervision tree starts it in order.
    """
    auth = auth or AuthStore(
        registry=cluster.registry,
        session_ttl=(config or GatewayConfig()).session_ttl,
    )
    client = ClusterClient.for_cluster(cluster, live=True)
    gateway = GatewayServer(
        client,
        auth=auth,
        config=config,
        registry=cluster.registry,
        health_provider=cluster.supervisor.health,
    )
    gateway.feed = cluster.subscribe(
        lambda _seq, _event: None,
        name=consumer_name,
        batch_callback=gateway.hub.publish_entries,
    )
    cluster.supervisor.add_child(gateway)
    return gateway
