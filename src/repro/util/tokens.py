"""Token-bucket rate limiting.

Used by workload generators to pace event production at a target rate and
by the perf models to express sustained service rates.
"""

from __future__ import annotations

from repro.util.clock import Clock, WallClock


class TokenBucket:
    """A classic token bucket.

    *rate* tokens accrue per second up to *burst* capacity.  ``take()``
    consumes tokens when available; ``delay_until_available`` reports how
    long a caller would need to wait, which lets virtual-time drivers
    advance their clocks instead of sleeping.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._clock = clock or WallClock()
        self._tokens = self.burst
        self._stamp = self._clock.now()

    def _refill(self) -> None:
        now = self._clock.now()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        self._refill()
        return self._tokens

    def take(self, amount: float = 1.0) -> bool:
        """Consume *amount* tokens if available; return success."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def delay_until_available(self, amount: float = 1.0) -> float:
        """Seconds until *amount* tokens will be available (0 if now)."""
        if amount > self.burst:
            raise ValueError(
                f"requested {amount} tokens exceeds burst capacity {self.burst}"
            )
        self._refill()
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate
