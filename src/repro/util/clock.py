"""Clock abstractions.

Every component in the library reads time through a :class:`Clock` so the
same code runs against wall-clock time in the live threaded deployment and
against virtual time in tests and discrete-event performance models.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: seconds since an arbitrary epoch."""

    def now(self) -> float:
        """Return the current time in (possibly virtual) seconds."""
        ...  # pragma: no cover - protocol definition


class WallClock:
    """A :class:`Clock` backed by the real system clock."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for *seconds* of real time."""
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WallClock()"


class ManualClock:
    """A deterministic, manually advanced clock for tests and models.

    The clock is thread-safe: live components running in worker threads may
    read it while a test driver advances it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by *seconds* and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock backwards: {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, timestamp: float) -> None:
        """Jump the clock to an absolute *timestamp* (must not go back)."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError(
                    f"cannot set clock backwards: {timestamp} < {self._now}"
                )
            self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ManualClock(now={self.now():.6f})"
