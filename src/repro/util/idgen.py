"""Monotonic identifier generation.

Ids are used for changelog record numbers, event ids, queue message ids and
rule ids.  All generators are thread-safe.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe monotonically increasing integer ids.

    >>> gen = IdGenerator(start=10)
    >>> gen.next(), gen.next()
    (10, 11)
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def next(self) -> int:
        """Return the next id in the sequence."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self) -> int:
        """The most recently issued id (start-1 if none issued yet)."""
        with self._lock:
            return self._last


_GLOBAL = IdGenerator()


def monotonic_id() -> int:
    """Return a process-wide unique monotonically increasing integer."""
    return _GLOBAL.next()


def prefixed_ids(prefix: str, start: int = 1):
    """Yield string ids like ``prefix-1``, ``prefix-2``, ... forever."""
    for n in itertools.count(start):
        yield f"{prefix}-{n}"
