"""POSIX-style path manipulation for the in-memory filesystems.

These helpers are deliberately independent of :mod:`os.path` so the library
behaves identically on every host platform.  All filesystem namespaces in
this library use absolute, ``/``-separated paths.
"""

from __future__ import annotations

from repro.errors import InvalidPath


def normalize(path: str) -> str:
    """Return the canonical absolute form of *path*.

    Collapses repeated separators, resolves ``.`` and ``..`` components
    (never above the root) and strips trailing slashes (except for the
    root itself).

    >>> normalize('/a//b/./c/../d/')
    '/a/b/d'
    """
    if not isinstance(path, str) or not path:
        raise InvalidPath(repr(path), "path must be a non-empty string")
    if not path.startswith("/"):
        raise InvalidPath(path, "path must be absolute")
    parts: list[str] = []
    for component in path.split("/"):
        if component in ("", "."):
            continue
        if component == "..":
            if parts:
                parts.pop()
            continue
        if "\x00" in component:
            raise InvalidPath(path, "NUL byte in path component")
        parts.append(component)
    return "/" + "/".join(parts)


def split_components(path: str) -> list[str]:
    """Return the normalized components of *path* (empty list for ``/``).

    >>> split_components('/a/b/c')
    ['a', 'b', 'c']
    """
    norm = normalize(path)
    if norm == "/":
        return []
    return norm[1:].split("/")


def join(parent: str, *names: str) -> str:
    """Join *names* onto the absolute *parent* path.

    >>> join('/a', 'b', 'c')
    '/a/b/c'
    """
    result = normalize(parent)
    for name in names:
        if not name or "/" in name:
            raise InvalidPath(name, "component must be a single non-empty name")
        result = result.rstrip("/") + "/" + name
    return normalize(result)


def basename(path: str) -> str:
    """Return the final component of *path* ('' for the root).

    >>> basename('/a/b/c.txt')
    'c.txt'
    """
    components = split_components(path)
    return components[-1] if components else ""


def dirname(path: str) -> str:
    """Return the parent directory of *path* ('/' for the root).

    >>> dirname('/a/b/c.txt')
    '/a/b'
    """
    components = split_components(path)
    if len(components) <= 1:
        return "/"
    return "/" + "/".join(components[:-1])


def is_ancestor(ancestor: str, path: str) -> bool:
    """True if *ancestor* is the same as or a prefix directory of *path*.

    >>> is_ancestor('/a/b', '/a/b/c')
    True
    >>> is_ancestor('/a/b', '/a/bc')
    False
    """
    anc = normalize(ancestor)
    target = normalize(path)
    if anc == "/":
        return True
    return target == anc or target.startswith(anc + "/")


def depth(path: str) -> int:
    """Number of components below the root (root itself has depth 0)."""
    return len(split_components(path))
