"""Shared utilities: clocks, id generation, path helpers, token buckets."""

from repro.util.clock import Clock, ManualClock, WallClock
from repro.util.idgen import IdGenerator, monotonic_id
from repro.util.paths import basename, dirname, join, normalize, split_components
from repro.util.tokens import TokenBucket

__all__ = [
    "Clock",
    "ManualClock",
    "WallClock",
    "IdGenerator",
    "monotonic_id",
    "normalize",
    "split_components",
    "join",
    "basename",
    "dirname",
    "TokenBucket",
]
