"""Logging setup for the library.

Components log under the ``repro.*`` namespace with a quiet default (a
``NullHandler``, per library convention — applications opt in).  Use
:func:`configure_logging` in applications/examples for a sensible
console format, and :class:`CaptureHandler` in tests to assert on what
was logged.
"""

from __future__ import annotations

import logging
from typing import Optional

#: Root logger name for every component.
ROOT = "repro"

logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(component: str) -> logging.Logger:
    """Logger for *component*, namespaced under ``repro.``.

    >>> get_logger('core.collector').name
    'repro.core.collector'
    """
    if component.startswith(ROOT + ".") or component == ROOT:
        return logging.getLogger(component)
    return logging.getLogger(f"{ROOT}.{component}")


def configure_logging(
    level: int = logging.INFO,
    stream=None,
    fmt: str = "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
) -> logging.Handler:
    """Attach a console handler to the library's root logger.

    Returns the handler so callers can remove it again.  Calling twice
    replaces the previous console handler rather than duplicating
    output.
    """
    root = logging.getLogger(ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_console", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_console = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler


class CaptureHandler(logging.Handler):
    """Collects log records in memory (for tests)."""

    def __init__(self, level: int = logging.DEBUG) -> None:
        super().__init__(level)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)

    def messages(self, level: Optional[int] = None) -> list[str]:
        """Formatted messages, optionally filtered to one level."""
        return [
            record.getMessage()
            for record in self.records
            if level is None or record.levelno == level
        ]

    def attach(self) -> "CaptureHandler":
        """Attach to the library root (remember to :meth:`detach`)."""
        root = logging.getLogger(ROOT)
        root.addHandler(self)
        root.setLevel(logging.DEBUG)
        return self

    def detach(self) -> None:
        logging.getLogger(ROOT).removeHandler(self)
