"""Cross-process metrics relay: export a child registry, merge upstream.

The multiproc transport (PR 6) runs each shard's aggregation in a child
process with its *own* :class:`~repro.metrics.MetricsRegistry` — so
every child-side series (stage histograms, store-backend gauges, rule
index counters) was invisible to the parent's Prometheus exposition.
This module closes that hole:

* the **child** periodically captures its registry with
  :meth:`MetricsRegistry.export_state` (plain primitives, histogram
  bucket counts included) and ships the state over the existing
  control plane, marshal-encoded like every other multiproc frame;
* the **parent** bridge feeds each state into a :class:`RegistryRelay`,
  which merges the series into the parent registry under the bridge's
  scope (``shard0.store_backend_segments``,
  ``shard0.pipeline.aggregate`` …) so one scrape of the parent covers
  the whole tree.

**Respawn-safe monotone counters.**  A respawned child starts its
counters at zero.  The relay tracks a per-series *offset*: when the
bridge respawns the child it bumps the relay *epoch*, the relay folds
the last value seen from the dead incarnation into the offset, and the
merged parent counter continues monotonically — Prometheus rate()
windows never see a reset.  Histogram bucket counts (which are
cumulative counters per bucket) get the same element-wise treatment.

**Parent-local series win.**  The bridge keeps its own authoritative
counters (``batches_received``, ``events_stored`` mirrors …); the
relay only fills names the parent has not registered itself, so
relayed values can never fight a local series for one name.
"""

from __future__ import annotations

import marshal
import time
from typing import Dict, Iterable, Optional

from repro.metrics.registry import MetricsRegistry

__all__ = ["RegistryRelay", "decode_state", "encode_state"]


def encode_state(state: dict) -> bytes:
    """Marshal-encode an ``export_state()`` dict (pickle-free frame)."""
    return marshal.dumps(state)


def decode_state(data: bytes) -> dict:
    """Decode a frame produced by :func:`encode_state`."""
    return marshal.loads(data)


class _CounterTrack:
    """Offset accounting for one relayed monotone series."""

    __slots__ = ("offset", "last", "epoch")

    def __init__(self, epoch: int) -> None:
        self.offset = 0.0
        self.last = 0.0
        self.epoch = epoch

    def fold(self, epoch: int) -> None:
        """A new child incarnation: bank the dead one's final value."""
        if epoch != self.epoch:
            self.offset += self.last
            self.last = 0.0
            self.epoch = epoch


class _HistogramTrack:
    """Offset accounting for one relayed histogram (per-bucket)."""

    __slots__ = ("base_counts", "base_sum", "base_total", "max_seen",
                 "last", "epoch")

    def __init__(self, epoch: int) -> None:
        self.base_counts: list[int] = []
        self.base_sum = 0.0
        self.base_total = 0
        self.max_seen = 0.0
        self.last: Optional[dict] = None
        self.epoch = epoch

    def fold(self, epoch: int) -> None:
        if epoch != self.epoch:
            if self.last is not None:
                self._bank(self.last)
            self.last = None
            self.epoch = epoch

    def _bank(self, state: dict) -> None:
        counts = state["counts"]
        if len(self.base_counts) < len(counts):
            self.base_counts.extend(
                [0] * (len(counts) - len(self.base_counts))
            )
        for index, count in enumerate(counts):
            self.base_counts[index] += count
        self.base_sum += state["sum"]
        self.base_total += state["total"]
        self.max_seen = max(self.max_seen, state["max"])

    def merged(self, state: dict) -> dict:
        """base + the live incarnation's current state."""
        self.last = state
        counts = list(state["counts"])
        if len(counts) < len(self.base_counts):
            counts.extend([0] * (len(self.base_counts) - len(counts)))
        for index, base in enumerate(self.base_counts):
            counts[index] += base
        return {
            "counts": counts,
            "sum": self.base_sum + state["sum"],
            "total": self.base_total + state["total"],
            "max": max(self.max_seen, state["max"]),
            "min_latency": state["min_latency"],
        }


class RegistryRelay:
    """Merges child-process registry states into a parent registry.

    *scope* is the parent-side prefix (the owning bridge's metrics
    scope); *strip_scopes* are child-side scopes folded into it, so the
    child aggregator's own scope does not stutter — child
    ``shard0.events_stored`` maps to parent ``shard0.events_stored``,
    while unscoped child series (``pipeline.aggregate``) map to
    ``shard0.pipeline.aggregate``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        scope: str,
        strip_scopes: Iterable[str] = (),
    ) -> None:
        self.registry = registry
        self.scope = scope
        self.strip_scopes = tuple(strip_scopes)
        #: Parent names this relay created (and may keep updating).
        self._owned: set[str] = set()
        #: Names that exist parent-side already — never relayed.
        self._shadowed: set[str] = set()
        self._counters: Dict[str, _CounterTrack] = {}
        self._histograms: Dict[str, _HistogramTrack] = {}
        #: Relay ticks merged and wall-clock stamp of the latest one.
        self.merges = 0
        self.last_merge_time: Optional[float] = None

    def _map_name(self, name: str) -> str:
        for strip in self.strip_scopes:
            if name.startswith(strip + ".") and len(name) > len(strip) + 1:
                return f"{self.scope}.{name[len(strip) + 1:]}"
        return f"{self.scope}.{name}"

    def _claim(self, mapped: str) -> bool:
        """True when *mapped* is (or becomes) relay-owned."""
        if mapped in self._owned:
            return True
        if mapped in self._shadowed:
            return False
        if self.registry.contains(mapped):
            self._shadowed.add(mapped)
            return False
        self._owned.add(mapped)
        return True

    @property
    def age(self) -> float:
        """Seconds since the last merged relay tick (inf before one)."""
        if self.last_merge_time is None:
            return float("inf")
        return max(0.0, time.time() - self.last_merge_time)

    def merge(self, state: dict, epoch: int) -> int:
        """Merge one child ``export_state()`` under incarnation *epoch*.

        Returns the number of series applied.  Counters and histogram
        buckets resume monotone across epochs via offset folding;
        gauges and evaluated callback gauges are plain overwrites.
        """
        applied = 0
        for name, value in state.get("counters", {}).items():
            mapped = self._map_name(name)
            if not self._claim(mapped):
                continue
            track = self._counters.get(mapped)
            if track is None:
                track = self._counters[mapped] = _CounterTrack(epoch)
            track.fold(epoch)
            total = track.offset + value
            counter = self.registry.counter(mapped)
            delta = total - counter.value
            if delta > 0:
                counter.inc(int(delta))
            track.last = value
            applied += 1
        for table in ("gauges", "gauge_fns"):
            for name, value in state.get(table, {}).items():
                mapped = self._map_name(name)
                if not self._claim(mapped):
                    continue
                self.registry.gauge(mapped).set(value)
                applied += 1
        for name, hist_state in state.get("histograms", {}).items():
            mapped = self._map_name(name)
            if not self._claim(mapped):
                continue
            track = self._histograms.get(mapped)
            if track is None:
                track = self._histograms[mapped] = _HistogramTrack(epoch)
            track.fold(epoch)
            merged = track.merged(hist_state)
            histogram = self.registry.relayed_histogram(
                mapped,
                min_latency=merged["min_latency"],
                buckets=len(merged["counts"]),
            )
            histogram.set_state(
                merged["counts"], merged["sum"], merged["total"],
                merged["max"], merged["min_latency"],
            )
            applied += 1
        self.merges += 1
        self.last_merge_time = time.time()
        return applied
