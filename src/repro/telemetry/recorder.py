"""Flight recorder: a ring of registry snapshots dumped on trouble.

When a shard child dies or an alert fires, the metrics that *led up to*
the event are what an operator needs — and they are exactly what a
point-in-time scrape can no longer show.  The :class:`FlightRecorder`
keeps a bounded ring buffer of periodic full-registry snapshots
(cheap: one locked dict copy per tick) and writes the whole ring to a
JSON file when something goes wrong:

* the :class:`~repro.telemetry.alerts.AlertEvaluator` calls
  :meth:`dump` through its ``on_transition`` hook when an instance
  enters ``firing``;
* the recorder's own periodic tick watches a health provider (the
  supervision tree) and dumps when a service turns up ``crashed`` or
  its ``restart_count`` moves — covering :class:`ServiceCrash` paths
  that never raise through the recorder itself.

Dump files are small, self-describing JSON
(``flight-<n>-<reason>.json``) under ``directory`` (a temp directory
is created lazily when none is configured); a cooldown keeps a
flapping alert from writing an unbounded file series.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.metrics.registry import MetricsRegistry
from repro.runtime.service import Service, WorkerSpec

__all__ = ["FlightRecorder"]

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(reason: str) -> str:
    return _SLUG_RE.sub("-", reason).strip("-")[:64] or "dump"


class FlightRecorder(Service):
    """Rolling registry snapshots with dump-on-incident.

    capacity / interval:
        Ring size and seconds between snapshots — together the lookback
        window (default 120 × 0.5 s = one minute of history).
    health_provider:
        Optional zero-arg callable returning a supervision-tree health
        dict (``Supervisor.health()``); crashed states and
        restart-count movement observed through it trigger automatic
        dumps.
    cooldown:
        Minimum seconds between automatic dumps for the same reason.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        directory: Optional[str] = None,
        capacity: int = 120,
        interval: float = 0.5,
        health_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
        cooldown: float = 5.0,
        name: str = "flight-recorder",
    ) -> None:
        super().__init__(name, registry)
        self.registry = registry
        self.directory = directory
        self.capacity = capacity
        self.interval = interval
        self.health_provider = health_provider
        self.cooldown = cooldown
        self._ring_lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._dump_index = 0
        self._last_dump_at: Dict[str, float] = {}
        self._restart_counts: Dict[str, int] = {}
        self._crashed_seen: set[str] = set()
        self.dumps: List[str] = []
        self.snapshots_taken = self.metrics.counter("snapshots")
        self.dumps_written = self.metrics.counter("dumps")
        self.dump_errors = self.metrics.counter("dump_errors")

    # -- service plumbing ---------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("record", self.tick, interval=self.interval)]

    # -- recording ----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> int:
        """Take one snapshot and check supervision health; returns dumps
        written this tick.  Deterministic tests call this directly."""
        now = time.time() if now is None else now
        snapshot = self.registry.snapshot()
        with self._ring_lock:
            self._ring.append({"at": now, "metrics": snapshot})
        self.snapshots_taken.inc()
        return self._check_health(now)

    def _check_health(self, now: float) -> int:
        if self.health_provider is None:
            return 0
        try:
            health = self.health_provider()
        except Exception:
            self.dump_errors.inc()
            return 0
        written = 0
        for key, record in (health.get("services") or {}).items():
            if not isinstance(record, Mapping):
                continue
            state = record.get("state")
            restarts = int(record.get("restart_count") or 0)
            previous = self._restart_counts.get(key)
            self._restart_counts[key] = restarts
            if state == "crashed" and key not in self._crashed_seen:
                self._crashed_seen.add(key)
                if self.dump(f"crash-{key}", now=now):
                    written += 1
            elif state != "crashed":
                self._crashed_seen.discard(key)
            if previous is not None and restarts > previous:
                if self.dump(f"restart-{key}", now=now):
                    written += 1
        return written

    # -- dumping ------------------------------------------------------------

    def _resolve_directory(self) -> str:
        if self.directory is None:
            self.directory = tempfile.mkdtemp(prefix="repro-flight-")
        os.makedirs(self.directory, exist_ok=True)
        return self.directory

    def dump(self, reason: str, now: Optional[float] = None) -> Optional[str]:
        """Write the current ring to disk; returns the path (or None
        when suppressed by the per-reason cooldown or on write error)."""
        now = time.time() if now is None else now
        slug = _slug(reason)
        last = self._last_dump_at.get(slug)
        if last is not None and now - last < self.cooldown:
            return None
        self._last_dump_at[slug] = now
        with self._ring_lock:
            frames = list(self._ring)
            self._dump_index += 1
            index = self._dump_index
        payload = {
            "reason": reason,
            "at": now,
            "interval": self.interval,
            "frames": frames,
        }
        path = os.path.join(
            self._resolve_directory(), f"flight-{index:04d}-{slug}.json"
        )
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=None, separators=(",", ":"))
        except OSError:
            self.dump_errors.inc()
            return None
        self.dumps.append(path)
        self.dumps_written.inc()
        return path

    def on_alert(self, record: Dict[str, Any], old: str, new: str) -> None:
        """``AlertEvaluator.on_transition`` hook: dump on entry to firing."""
        if new == "firing":
            self.dump(f"alert-{record.get('rule', 'unknown')}")

    # -- read surface -------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The `/flight` endpoint payload."""
        with self._ring_lock:
            depth = len(self._ring)
            newest = self._ring[-1]["at"] if self._ring else None
            oldest = self._ring[0]["at"] if self._ring else None
        return {
            "directory": self.directory,
            "capacity": self.capacity,
            "interval": self.interval,
            "depth": depth,
            "oldest": oldest,
            "newest": newest,
            "dumps": list(self.dumps),
        }
