"""repro.telemetry — the operator plane over the metrics registry.

Four cooperating pieces, assembled by :class:`TelemetryPlane`:

* :class:`~repro.telemetry.server.TelemetryServer` — threaded
  stdlib-HTTP scrape surface (``/metrics``, ``/health``, ``/alerts``,
  ``/flight``);
* :class:`~repro.telemetry.relay.RegistryRelay` — merges child-process
  registry snapshots into the parent registry (used by the multiproc
  :class:`~repro.msgq.multiproc.ProcessShardBridge`);
* :class:`~repro.telemetry.alerts.AlertEvaluator` — declarative
  :class:`~repro.telemetry.alerts.AlertRule` evaluation with the
  pending→firing→resolved state machine;
* :class:`~repro.telemetry.recorder.FlightRecorder` — rolling registry
  snapshots dumped to JSON on alert firing or service crash.

``LustreMonitor`` and ``ClusterMonitor`` build a plane when configured
with ``telemetry_port=`` and add its services to their supervision
tree; everything also composes by hand for tests and embedders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Tuple

from repro.metrics.registry import MetricsRegistry
from repro.runtime.supervisor import Supervisor
from repro.telemetry.alerts import (
    AlertEvaluator,
    AlertRule,
    AlertState,
    parse_rule,
    recommended_rules,
)
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.relay import RegistryRelay, decode_state, encode_state
from repro.telemetry.server import PROMETHEUS_CONTENT_TYPE, TelemetryServer

__all__ = [
    "AlertEvaluator",
    "AlertRule",
    "AlertState",
    "FlightRecorder",
    "PROMETHEUS_CONTENT_TYPE",
    "RegistryRelay",
    "TelemetryConfig",
    "TelemetryPlane",
    "TelemetryServer",
    "decode_state",
    "encode_state",
    "parse_rule",
    "recommended_rules",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """How a monitor's telemetry plane is assembled.

    port:
        TCP port for the exposition server; 0 binds an ephemeral port
        (read it back from ``TelemetryPlane.port``).
    rules / recommended:
        Extra alert rules (text form, see
        :func:`~repro.telemetry.alerts.parse_rule`) and whether the
        stock :func:`recommended_rules` set is included.
    flight_dir:
        Directory for flight-recorder dumps; None picks a fresh temp
        directory on first dump.
    """

    port: int = 0
    host: str = "127.0.0.1"
    rules: Tuple[str, ...] = field(default_factory=tuple)
    recommended: bool = True
    eval_interval: float = 0.5
    flight_dir: Optional[str] = None
    flight_capacity: int = 120
    flight_interval: float = 0.5
    namespace: str = "repro"


class TelemetryPlane:
    """Server + evaluator + recorder wired together over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        config: Optional[TelemetryConfig] = None,
        health_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
    ) -> None:
        self.config = config or TelemetryConfig()
        self.registry = registry
        rules: list[AlertRule] = []
        if self.config.recommended:
            rules.extend(recommended_rules())
        rules.extend(parse_rule(text) for text in self.config.rules)
        self.evaluator = AlertEvaluator(
            registry,
            rules=tuple(rules),
            interval=self.config.eval_interval,
        )
        self.recorder = FlightRecorder(
            registry,
            directory=self.config.flight_dir,
            capacity=self.config.flight_capacity,
            interval=self.config.flight_interval,
            health_provider=health_provider,
        )
        self.evaluator.on_transition.append(self.recorder.on_alert)
        self.server = TelemetryServer(
            registry,
            port=self.config.port,
            host=self.config.host,
            namespace=self.config.namespace,
            health_provider=health_provider,
            alerts_provider=self.evaluator.alerts,
            flight_provider=self.recorder.describe,
        )

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def services(self):
        """The plane's services in start order."""
        return [self.evaluator, self.recorder, self.server]

    def add_to(self, supervisor: Supervisor) -> None:
        """Register every plane service as a supervised child."""
        for service in self.services():
            supervisor.add_child(service)

    def close(self) -> None:
        for service in reversed(self.services()):
            service.close()
