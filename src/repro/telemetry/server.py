"""The exposition server: stdlib-HTTP scrape surface for operators.

A :class:`TelemetryServer` is an ordinary supervised
:class:`~repro.runtime.Service` wrapping a
:class:`~http.server.ThreadingHTTPServer`.  The socket is bound (and
the ephemeral port resolved) in the constructor, so callers can read
``server.port`` before ``start()``; the worker loop then steps
``handle_request()`` with a short socket timeout, which keeps shutdown
responsive without a dedicated ``serve_forever`` thread to unwind.

Routes:

``/metrics``
    Prometheus text exposition 0.0.4 of the shared registry.
``/health``
    Supervision-tree health JSON (``Supervisor.health()``); responds
    ``503`` when any service in the tree is crashed so load balancers
    and probes can act on it.
``/alerts``
    The alert evaluator's rules, non-ok instances, and history.
``/flight``
    The flight recorder's ring status and dump paths.
``/``
    A plain-text index of the above.

Everything is read-only GET; there is deliberately no mutation surface.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional

from repro.metrics.registry import MetricsRegistry
from repro.runtime.service import Service, WorkerSpec
from repro.util.logging import get_logger

__all__ = ["TelemetryServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"
    #: Set per-server by TelemetryServer (class is instantiated by the
    #: HTTP machinery, so configuration rides on the server object).

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._send(status, "application/json; charset=utf-8", body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                telemetry.scrapes.inc()
                body = telemetry.render_metrics().encode("utf-8")
                self._send(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/health":
                health = telemetry.health_payload()
                status = 503 if health.get("degraded") else 200
                self._send_json(status, health)
            elif path == "/alerts":
                self._send_json(200, telemetry.alerts_payload())
            elif path == "/flight":
                self._send_json(200, telemetry.flight_payload())
            elif path == "/":
                body = (
                    "repro telemetry\n"
                    "  /metrics  Prometheus text exposition\n"
                    "  /health   supervision-tree health JSON\n"
                    "  /alerts   alert rules, instances, history\n"
                    "  /flight   flight-recorder status\n"
                ).encode("utf-8")
                self._send(200, "text/plain; charset=utf-8", body)
            else:
                self._send_json(404, {"error": f"no route {path!r}"})
        except BrokenPipeError:
            pass
        except Exception as exc:
            telemetry.errors.inc()
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass

    def log_message(self, format: str, *args: Any) -> None:
        telemetry: "TelemetryServer" = self.server.telemetry  # type: ignore[attr-defined]
        telemetry.log.debug("%s - %s", self.address_string(), format % args)


class TelemetryServer(Service):
    """Supervised HTTP exposition server over a shared registry.

    port=0 binds an ephemeral port; read :attr:`port` for the resolved
    one.  *health_provider*, *alerts_provider* and *flight_provider*
    are optional zero-arg callables backing the non-metrics routes.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        namespace: str = "repro",
        health_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
        alerts_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
        flight_provider: Optional[Callable[[], Mapping[str, Any]]] = None,
        name: str = "telemetry-server",
    ) -> None:
        super().__init__(name, registry)
        self.registry = registry
        self.namespace = namespace
        self.health_provider = health_provider
        self.alerts_provider = alerts_provider
        self.flight_provider = flight_provider
        self.log = get_logger(f"telemetry.{name}")
        self.scrapes = self.metrics.counter("scrapes")
        self.errors = self.metrics.counter("request_errors")
        self.server = ThreadingHTTPServer((host, port), _Handler)
        self.server.daemon_threads = True
        # handle_request() blocks at most this long, so the worker loop
        # notices stop promptly even with no traffic.
        self.server.timeout = 0.1
        self.server.telemetry = self  # type: ignore[attr-defined]
        self.host, self.port = self.server.server_address[:2]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- service plumbing ---------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("serve", self._serve_step)]

    def _serve_step(self) -> int:
        self.server.handle_request()
        # Always "worked": handle_request owns its own timeout-based
        # waiting, so idle backoff on top would only add latency.
        return 1

    def on_close(self) -> None:
        self.server.server_close()

    # -- route payloads -----------------------------------------------------

    def render_metrics(self) -> str:
        return self.registry.render_prometheus(namespace=self.namespace)

    def health_payload(self) -> Dict[str, Any]:
        if self.health_provider is None:
            return {"state": "unknown", "services": {}, "degraded": False}
        health = dict(self.health_provider())
        services = health.get("services") or {}
        degraded = health.get("state") == "crashed" or any(
            isinstance(record, Mapping) and record.get("state") == "crashed"
            for record in services.values()
        )
        health["degraded"] = degraded
        return health

    def alerts_payload(self) -> Mapping[str, Any]:
        if self.alerts_provider is None:
            return {"firing": 0, "rules": [], "instances": [], "history": []}
        return self.alerts_provider()

    def flight_payload(self) -> Mapping[str, Any]:
        if self.flight_provider is None:
            return {"dumps": [], "depth": 0}
        return self.flight_provider()
