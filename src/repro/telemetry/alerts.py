"""Declarative alert rules evaluated over registry snapshots.

MELT-style operation (PAPERS.md) needs more than a scrape endpoint: an
operator has to be told *when* the fabric is unhealthy — a shard's
inbound queue saturating, credits exhausted, a child process
restart-looping, fsync falling behind appends.  This module is a small
in-process alerting tier over :meth:`MetricsRegistry.snapshot`:

* :class:`AlertRule` — a frozen declarative rule.  Three kinds:
  ``threshold`` (value, or value/divisor ratio, compared against a
  bound), ``rate`` (change per second between evaluations), and
  ``absence`` (no series matches the pattern at all).  Metric patterns
  use fnmatch globbing (``*.inbound_depth``) so one rule covers every
  shard; a ``*`` captured in the metric pattern substitutes into the
  divisor pattern so ratios pair up per-shard.
* :func:`parse_rule` — a compact text grammar
  (``shard-pressure: *.inbound_depth / *.inbound_hwm > 0.8 for 5s``)
  so rules can arrive from CLI flags and config files.
* :class:`AlertEvaluator` — a :class:`~repro.runtime.Service` that
  periodically evaluates every rule against a fresh snapshot and runs
  each (rule, series) instance through the
  ``ok → pending → firing → resolved`` state machine: a breach must
  persist ``for <duration>`` before firing, and a firing alert resolves
  (sticky state, kept in history) once the breach clears.  Firing
  alerts surface on ``/alerts``, in ``repro_alerts_firing``, and
  through ``on_transition`` callbacks (the flight recorder hooks one).
"""

from __future__ import annotations

import fnmatch
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.metrics.registry import MetricsRegistry
from repro.runtime.service import Service, WorkerSpec

__all__ = [
    "AlertEvaluator",
    "AlertRule",
    "AlertState",
    "parse_rule",
    "recommended_rules",
]

def _glob_capture(pattern: str) -> "re.Pattern[str]":
    """Compile a glob to a regex whose ``*``/``?`` wildcards capture."""
    parts: List[str] = []
    for char in pattern:
        if char == "*":
            parts.append("(.*)")
        elif char == "?":
            parts.append("(.)")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts) + r"\Z")


_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert condition over snapshot series.

    kind:
        ``threshold`` compares each matching series' value (divided by
        its paired *divisor* series when set); ``rate`` compares the
        per-second change between consecutive evaluations; ``absence``
        breaches when *no* series matches *metric* at all.
    duration:
        Seconds a breach must persist before the instance fires.  Zero
        fires on the first breaching evaluation.
    """

    name: str
    metric: str
    op: str = ">"
    threshold: float = 0.0
    duration: float = 0.0
    kind: str = "threshold"
    divisor: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison op {self.op!r}")
        if self.kind not in ("threshold", "rate", "absence"):
            raise ValueError(f"unknown rule kind {self.kind!r}")

    def compare(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def spec(self) -> str:
        """The rule condition as display text."""
        metric = self.metric
        if self.kind == "rate":
            metric = f"rate({metric})"
        elif self.kind == "absence":
            return f"absent({metric}) for {self.duration:g}s"
        if self.divisor:
            metric = f"{metric} / {self.divisor}"
        text = f"{metric} {self.op} {self.threshold:g}"
        if self.duration:
            text += f" for {self.duration:g}s"
        return text


_RULE_RE = re.compile(
    r"""^\s*
    (?:(?P<name>[\w.\-]+)\s*:)?\s*
    (?:
        absent\(\s*(?P<absent>[^\s()]+)\s*\)
        |
        (?:rate\(\s*(?P<rated>[^\s()]+)\s*\)|(?P<metric>[^\s()/]+))
        (?:\s*/\s*(?P<divisor>[^\s()]+))?
        \s*(?P<op>>=|<=|==|!=|>|<)\s*
        (?P<threshold>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    )
    (?:\s+for\s+(?P<duration>\d+(?:\.\d+)?)s?)?
    \s*$""",
    re.VERBOSE,
)


def parse_rule(text: str) -> AlertRule:
    """Parse ``[name:] <cond> [for Ns]`` rule text.

    Conditions: ``metric > N``, ``metric / divisor > N``,
    ``rate(metric) > N``, ``absent(metric)``.  Examples::

        shard-pressure: *.inbound_depth / *.inbound_hwm > 0.8 for 10s
        restarts: rate(*.child_restarts) > 0
        stale: absent(*.events_stored) for 30s
    """
    match = _RULE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable alert rule: {text!r}")
    groups = match.groupdict()
    duration = float(groups["duration"] or 0.0)
    if groups["absent"]:
        return AlertRule(
            name=groups["name"] or f"absent-{groups['absent']}",
            metric=groups["absent"],
            kind="absence",
            duration=duration,
        )
    kind = "rate" if groups["rated"] else "threshold"
    metric = groups["rated"] or groups["metric"]
    if kind == "rate" and groups["divisor"]:
        raise ValueError(f"rate() rules take no divisor: {text!r}")
    return AlertRule(
        name=groups["name"] or f"{kind}-{metric}",
        metric=metric,
        op=groups["op"],
        threshold=float(groups["threshold"]),
        duration=duration,
        kind=kind,
        divisor=groups["divisor"],
    )


def recommended_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set for a monitor/cluster deployment.

    Covers the failure modes the OPERATIONS runbook calls out: shard
    inbound pressure, credit exhaustion, child restart churn, store
    fsync lag, and supervised-service crashes.
    """
    return (
        AlertRule(
            name="shard-inbound-pressure",
            metric="*.inbound_depth",
            divisor="*.inbound_hwm",
            op=">",
            threshold=0.8,
            duration=5.0,
            description="shard inbound queue above 80% of its high-water mark",
        ),
        AlertRule(
            name="credit-exhaustion",
            metric="*.inbound_credits",
            op="<=",
            threshold=0.0,
            duration=5.0,
            description="flow-control credits exhausted; producers are blocked",
        ),
        AlertRule(
            name="child-restarts",
            metric="*.child_restarts",
            kind="rate",
            op=">",
            threshold=0.0,
            description="a shard child process died and was respawned",
        ),
        AlertRule(
            name="store-fsync-lag",
            metric="*.store_backend_appends",
            divisor="*.store_backend_fsyncs",
            op=">",
            threshold=10_000.0,
            duration=10.0,
            description="append/fsync ratio too high; durability window growing",
        ),
        AlertRule(
            name="service-crashes",
            metric="*.crashes",
            kind="rate",
            op=">",
            threshold=0.0,
            description="a supervised service worker crashed",
        ),
        AlertRule(
            name="gateway-auth-failures",
            metric="*.auth_failures",
            kind="rate",
            op=">",
            threshold=5.0,
            duration=5.0,
            description="gateway authentication failures above 5/s; "
            "credential scan or misconfigured client",
        ),
        AlertRule(
            name="rule-eval-pressure",
            metric="*.ripple_eval_pressure",
            op=">",
            threshold=0.5,
            duration=10.0,
            description="rule evaluations tracking candidate volume; "
            "predicate dedup/fusion is not collapsing matching work "
            "(rules stack on shared spines with distinct predicates)",
        ),
        AlertRule(
            name="gateway-stream-shed",
            metric="*.stream_shed",
            kind="rate",
            op=">",
            threshold=0.0,
            description="a gateway stream is shedding events; a tenant's "
            "consumer is slower than its subscription",
        ),
    )


class AlertState:
    """Alert instance states (plain strings keep history JSON-trivial)."""

    OK = "ok"
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


OK = AlertState.OK
PENDING = AlertState.PENDING
FIRING = AlertState.FIRING
RESOLVED = AlertState.RESOLVED


@dataclass
class _Instance:
    """State machine for one (rule, series) pair."""

    rule: AlertRule
    series: str
    state: str = OK
    value: float = 0.0
    breach_since: Optional[float] = None
    fired_at: Optional[float] = None
    resolved_at: Optional[float] = None
    #: Previous (time, value) sample for rate rules.
    prev: Optional[Tuple[float, float]] = None
    transitions: int = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.name,
            "spec": self.rule.spec(),
            "series": self.series,
            "state": self.state,
            "value": self.value,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "description": self.rule.description,
        }


class AlertEvaluator(Service):
    """Periodically evaluates alert rules against registry snapshots.

    Deterministic tests call :meth:`evaluate_once` directly with a fake
    *now* and a prepared snapshot; in live mode a periodic worker polls
    the shared registry every ``interval`` seconds.  All reads used by
    the HTTP endpoint take the internal lock, so the scrape thread sees
    a consistent view.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        rules: Tuple[AlertRule, ...] = (),
        interval: float = 1.0,
        history_limit: int = 256,
        name: str = "alerts",
    ) -> None:
        super().__init__(name, registry)
        self.registry = registry
        self.rules: List[AlertRule] = list(rules)
        self.interval = interval
        self._alert_lock = threading.Lock()
        self._instances: Dict[Tuple[str, str], _Instance] = {}
        self.history: deque = deque(maxlen=history_limit)
        #: Called with (instance_record, old_state, new_state) on every
        #: state change; the flight recorder subscribes here.
        self.on_transition: List[Callable[[Dict[str, Any], str, str], None]] = []
        self.evaluations = self.metrics.counter("evaluations")
        # Root-level (unscoped) gauge: renders as repro_alerts_firing.
        registry.gauge_fn("alerts_firing", self.firing_count)
        registry.describe(
            "alerts_firing", "number of alert instances currently firing"
        )

    # -- service plumbing ---------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("evaluate", self.evaluate_once, interval=self.interval)]

    # -- evaluation ---------------------------------------------------------

    def add_rule(self, rule: AlertRule) -> None:
        with self._alert_lock:
            self.rules.append(rule)

    def _series_values(
        self, rule: AlertRule, snapshot: Mapping[str, Any]
    ) -> List[Tuple[str, Optional[float]]]:
        """Matching (series, value) pairs; value None = missing divisor."""
        pairs: List[Tuple[str, Optional[float]]] = []
        pattern = _glob_capture(rule.metric)
        for key in sorted(snapshot):
            value = snapshot[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            match = pattern.match(key)
            if not match:
                continue
            if rule.divisor is None:
                pairs.append((key, float(value)))
                continue
            # Substitute the stars captured from the metric pattern into
            # the divisor pattern so ratios pair per-shard:
            # *.inbound_depth matching shard0.inbound_depth makes the
            # divisor *.inbound_hwm look up shard0.inbound_hwm.
            divisor_name = rule.divisor
            for captured in match.groups():
                divisor_name = divisor_name.replace("*", captured, 1)
            divisor_value = snapshot.get(divisor_name)
            if (
                isinstance(divisor_value, (int, float))
                and not isinstance(divisor_value, bool)
                and float(divisor_value) != 0.0
            ):
                pairs.append((key, float(value) / float(divisor_value)))
            else:
                pairs.append((key, None))
        return pairs

    def evaluate_once(
        self,
        now: Optional[float] = None,
        snapshot: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Evaluate every rule once; returns instances currently firing."""
        now = time.time() if now is None else now
        if snapshot is None:
            snapshot = self.registry.snapshot()
        with self._alert_lock:
            self.evaluations.inc()
            for rule in self.rules:
                if rule.kind == "absence":
                    self._evaluate_absence(rule, snapshot, now)
                    continue
                for series, value in self._series_values(rule, snapshot):
                    if value is None:
                        continue
                    instance = self._instance(rule, series)
                    if rule.kind == "rate":
                        sample = value
                        if instance.prev is None:
                            instance.prev = (now, sample)
                            continue
                        prev_time, prev_value = instance.prev
                        instance.prev = (now, sample)
                        elapsed = now - prev_time
                        if elapsed <= 0:
                            continue
                        value = (sample - prev_value) / elapsed
                    self._step(instance, rule.compare(value), value, now)
            return sum(
                1 for inst in self._instances.values() if inst.state == FIRING
            )

    def _evaluate_absence(
        self, rule: AlertRule, snapshot: Mapping[str, Any], now: float
    ) -> None:
        present = any(
            fnmatch.fnmatch(key, rule.metric)
            and isinstance(snapshot[key], (int, float))
            for key in snapshot
        )
        instance = self._instance(rule, rule.metric)
        self._step(instance, not present, 0.0 if present else 1.0, now)

    def _instance(self, rule: AlertRule, series: str) -> _Instance:
        key = (rule.name, series)
        instance = self._instances.get(key)
        if instance is None:
            instance = self._instances[key] = _Instance(rule, series)
        return instance

    def _step(
        self, instance: _Instance, breaching: bool, value: float, now: float
    ) -> None:
        instance.value = value
        old = instance.state
        if breaching:
            if instance.breach_since is None:
                instance.breach_since = now
            held = now - instance.breach_since
            if instance.state in (OK, PENDING, RESOLVED):
                if held >= instance.rule.duration:
                    instance.state = FIRING
                    instance.fired_at = now
                    instance.resolved_at = None
                elif instance.state != PENDING:
                    instance.state = PENDING
        else:
            instance.breach_since = None
            if instance.state == FIRING:
                instance.state = RESOLVED
                instance.resolved_at = now
            elif instance.state == PENDING:
                instance.state = OK
        if instance.state != old:
            instance.transitions += 1
            record = {**instance.describe(), "at": now, "from": old}
            self.history.append(record)
            self.metrics.counter(f"transitions_{instance.state}").inc()
            for callback in list(self.on_transition):
                try:
                    callback(record, old, instance.state)
                except Exception:  # a broken sink must not stop evaluation
                    self.metrics.counter("callback_errors").inc()

    # -- read surface -------------------------------------------------------

    def firing_count(self) -> int:
        with self._alert_lock:
            return sum(
                1 for inst in self._instances.values() if inst.state == FIRING
            )

    def alerts(self) -> Dict[str, Any]:
        """The `/alerts` endpoint payload."""
        with self._alert_lock:
            instances = [
                inst.describe()
                for inst in self._instances.values()
                if inst.state != OK
            ]
            return {
                "firing": sum(1 for i in instances if i["state"] == FIRING),
                "rules": [
                    {
                        "name": rule.name,
                        "spec": rule.spec(),
                        "description": rule.description,
                    }
                    for rule in self.rules
                ],
                "instances": instances,
                "history": list(self.history),
            }
