"""Plain-text rendering of tables and figures for the benchmarks.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output readable in a terminal and in the
captured ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def comparison_table(
    rows: Iterable[tuple[str, float, float]],
    title: str = "",
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> str:
    """Render (metric, paper value, measured value, ratio) rows."""
    rendered = []
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        rendered.append(
            (name, f"{paper:,.2f}", f"{measured:,.2f}", f"{ratio:.3f}x")
        )
    return render_table(
        ["metric", paper_label, measured_label, "ratio"], rendered, title=title
    )


def ascii_chart(
    series: dict[str, Sequence[float]],
    width: int = 70,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """A multi-series ASCII chart (Figure 3 style).

    Each series gets its own glyph; the x axis is the sample index.
    """
    glyphs = "*o+x#@"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title + "\n(no data)"
    peak = max(all_values) or 1.0
    n_points = max(len(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]
    for series_index, (_name, values) in enumerate(sorted(series.items())):
        glyph = glyphs[series_index % len(glyphs)]
        for point_index, value in enumerate(values):
            x = (
                int(point_index * (width - 1) / (n_points - 1))
                if n_points > 1
                else 0
            )
            y = height - 1 - int((value / peak) * (height - 1))
            grid[y][x] = glyph
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label} (peak = {peak:,.0f})")
    for row_index, row in enumerate(grid):
        margin = f"{peak * (height - 1 - row_index) / (height - 1):>12,.0f} |"
        lines.append(margin + "".join(row))
    lines.append(" " * 13 + "+" + "-" * width)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)
