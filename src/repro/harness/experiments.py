"""Experiment runners: one per paper table/figure (see DESIGN.md index).

Each runner returns a report object carrying both the measured values
and the paper's published values, plus a ``render()`` method producing
the table/series the paper reports.  The benchmarks call these and
assert on the *shape* (who wins, bottleneck identity, rough factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.harness.reporting import ascii_chart, comparison_table, render_table
from repro.lustre.filesystem import LustreFilesystem
from repro.perf.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.perf.testbeds import (
    AWS,
    IOTA,
    PAPER_MONITOR_THROUGHPUT,
    PAPER_TABLE2,
    PAPER_TABLE3,
    TestbedProfile,
)
from repro.util.clock import ManualClock
from repro.workloads.generator import EventGenerator
from repro.workloads.nersc import (
    AURORA_PB,
    DumpDiffer,
    FileSystemDumpModel,
    PEAK_DIFFS_PER_DAY,
    ScalingAnalysis,
    TLPROJECT2_PB,
)

# ---------------------------------------------------------------------------
# E1: Table 1 — a sample ChangeLog
# ---------------------------------------------------------------------------


def experiment_table1() -> list[str]:
    """Recreate Table 1: the textual records for CREAT/MKDIR/UNLNK.

    Runs the paper's exact operation sequence (create data1.txt, mkdir
    DataDir, delete data1.txt) on a fresh Lustre model and returns the
    rendered ChangeLog lines.
    """
    clock = ManualClock(start=1_504_728_937.0)  # 2017-09-06, as in Table 1
    fs = LustreFilesystem(clock=clock)
    fs.create("/data1.txt")
    clock.advance(0.4)
    fs.mkdir("/DataDir")
    clock.advance(0.38)
    fs.unlink("/data1.txt")
    return [line for changelog in fs.changelogs() for line in changelog.dump()]


# ---------------------------------------------------------------------------
# E2: Table 2 — testbed performance characteristics
# ---------------------------------------------------------------------------


@dataclass
class Table2Report:
    """Measured generation rates for one testbed vs the paper's."""

    testbed: str
    storage_size: str
    created_per_s: float
    modified_per_s: float
    deleted_per_s: float
    total_per_s: float
    paper: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            ("Files Created (events/s)", self.paper["created"], self.created_per_s),
            ("Files Modified (events/s)", self.paper["modified"], self.modified_per_s),
            ("Files Deleted (events/s)", self.paper["deleted"], self.deleted_per_s),
            ("Total Events (events/s)", self.paper["total"], self.total_per_s),
        ]
        return comparison_table(
            rows,
            title=(
                f"Table 2 — {self.testbed} ({self.storage_size}) "
                "testbed performance characteristics"
            ),
        )


def experiment_table2(
    profile: TestbedProfile, n_files: int = 10_000
) -> Table2Report:
    """Run the 10,000-file create/modify/delete script in calibrated mode.

    Per-phase rates are *derived* by executing the real filesystem model
    under the profile's per-op latencies and counting actual ChangeLog
    records per virtual second.  The combined "Total Events" row is the
    testbed's measured maximum sustained rate (a calibration input, used
    downstream as the throughput experiment's arrival rate).
    """
    clock = ManualClock()
    fs = LustreFilesystem(clock=clock)
    generator = EventGenerator(fs, latencies=profile.op_latencies)
    report = generator.generate(n_files=n_files)
    return Table2Report(
        testbed=profile.name,
        storage_size=profile.storage_size,
        created_per_s=report.created_per_second,
        modified_per_s=report.modified_per_second,
        deleted_per_s=report.deleted_per_second,
        total_per_s=profile.combined_event_rate,
        paper=dict(PAPER_TABLE2[profile.name]),
    )


# ---------------------------------------------------------------------------
# E3: §5.2 — event throughput
# ---------------------------------------------------------------------------


@dataclass
class ThroughputReport:
    """Monitor throughput vs generation rate for one testbed."""

    testbed: str
    result: PipelineResult
    paper_monitor_rate: float
    paper_generation_rate: float

    @property
    def measured_monitor_rate(self) -> float:
        return self.result.delivered_rate

    @property
    def measured_shortfall_percent(self) -> float:
        return self.result.shortfall_percent

    @property
    def paper_shortfall_percent(self) -> float:
        return 100.0 * (
            1.0 - self.paper_monitor_rate / self.paper_generation_rate
        )

    def render(self) -> str:
        rows = [
            (
                "generation rate (events/s)",
                self.paper_generation_rate,
                self.result.generation_rate,
            ),
            (
                "monitor throughput (events/s)",
                self.paper_monitor_rate,
                self.measured_monitor_rate,
            ),
            (
                "shortfall vs generation (%)",
                self.paper_shortfall_percent,
                self.measured_shortfall_percent,
            ),
        ]
        table = comparison_table(
            rows, title=f"Event throughput — {self.testbed} (paper section 5.2)"
        )
        util = self.result.stage_utilisation()
        breakdown = render_table(
            ["stage", "busy fraction"],
            [(name, f"{frac:.3f}") for name, frac in sorted(util.items())],
            title="Pipeline stage utilisation (bottleneck analysis)",
        )
        return (
            f"{table}\n\n{breakdown}\n"
            f"bottleneck stage: {self.result.bottleneck} "
            "(paper: the preprocessing/d2path step)"
        )


def experiment_throughput(
    profile: TestbedProfile,
    duration: float = 30.0,
    batch_size: int = 1,
    cache_size: int = 0,
    num_mds: int = 1,
    transport: str = "pushpull",
) -> ThroughputReport:
    """Drive the pipeline model at the testbed's maximum event rate."""
    result = run_pipeline(
        PipelineConfig(
            profile=profile,
            duration=duration,
            batch_size=batch_size,
            cache_size=cache_size,
            num_mds=num_mds,
            transport=transport,
        )
    )
    return ThroughputReport(
        testbed=profile.name,
        result=result,
        paper_monitor_rate=PAPER_MONITOR_THROUGHPUT[profile.name],
        paper_generation_rate=PAPER_TABLE2[profile.name]["total"],
    )


# ---------------------------------------------------------------------------
# E4: Table 3 — monitor resource utilisation
# ---------------------------------------------------------------------------


@dataclass
class Table3Report:
    """Peak per-component CPU/memory vs the paper's Table 3."""

    testbed: str
    measured: Dict[str, tuple[float, float]]
    paper: Dict[str, tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for component in ("collector", "aggregator", "consumer"):
            paper_cpu, paper_mem = self.paper[component]
            cpu, mem = self.measured[component]
            rows.append(
                (
                    component.capitalize(),
                    f"{paper_cpu:.3f}",
                    f"{cpu:.3f}",
                    f"{paper_mem:.1f}",
                    f"{mem:.1f}",
                )
            )
        return render_table(
            [
                "component",
                "CPU% (paper)",
                "CPU% (measured)",
                "Mem MB (paper)",
                "Mem MB (measured)",
            ],
            rows,
            title=f"Table 3 — maximum monitor resource utilisation ({self.testbed})",
        )


def experiment_table3(duration: float = 30.0) -> Table3Report:
    """Reproduce Table 3 from the Iota throughput run's resource samples."""
    result = run_pipeline(PipelineConfig(profile=IOTA, duration=duration))
    measured = {
        name: (sample.cpu_percent, sample.memory_mb)
        for name, sample in result.resources.items()
    }
    return Table3Report(testbed="Iota", measured=measured, paper=dict(PAPER_TABLE3))


# ---------------------------------------------------------------------------
# E5: Figure 3 — NERSC daily differences + scaling analysis
# ---------------------------------------------------------------------------


@dataclass
class Figure3Report:
    """The dump-differencing series plus the paper's §5.3 arithmetic."""

    days: list[int]
    created: list[int]
    modified: list[int]
    scale_factor: float
    scaled_peak_diffs: int
    analysis: ScalingAnalysis
    paper_peak_diffs: int = PEAK_DIFFS_PER_DAY
    paper_avg_rate: float = 42.0
    paper_worst_case_rate: float = 127.0
    paper_aurora_rate: float = 3178.0

    @property
    def peak_day(self) -> int:
        totals = [c + m for c, m in zip(self.created, self.modified)]
        return self.days[totals.index(max(totals))]

    def render(self) -> str:
        chart = ascii_chart(
            {
                "created": [c * self.scale_factor for c in self.created],
                "modified": [m * self.scale_factor for m in self.modified],
            },
            title=(
                "Figure 3 — files created/modified per day on the synthetic "
                "tlproject2 (scaled to 850M files)"
            ),
            y_label="events/day",
        )
        rows = [
            ("peak daily differences", float(self.paper_peak_diffs), float(self.scaled_peak_diffs)),
            ("events/s over 24h", self.paper_avg_rate, self.analysis.events_per_second_24h),
            ("events/s, 8h worst case", self.paper_worst_case_rate, self.analysis.events_per_second_8h),
            (
                f"Aurora {AURORA_PB:.0f}PB extrapolation (events/s)",
                self.paper_aurora_rate,
                self.analysis.extrapolate(),
            ),
        ]
        table = comparison_table(rows, title="Scaling analysis (paper section 5.3)")
        return f"{chart}\n\n{table}"


def experiment_figure3(
    days: int = 36,
    base_files: int = 850_000,
    seed: int = 7,
) -> Figure3Report:
    """Synthesize the dump series and run the paper's diff analysis.

    *base_files* is 1/1000 of tlproject2's ~850M files for tractability;
    counts are scaled back up by that factor for reporting, which is
    exact because the differencing analysis is linear in population.
    """
    scale_factor = 850_000_000 / base_files
    model = FileSystemDumpModel(base_files=base_files, seed=seed)
    series = model.generate_series(days=days)
    diffs = DumpDiffer.analyze(series)
    created = [d.created for d in diffs]
    modified = [d.modified for d in diffs]
    peak = max(d.total_differences for d in diffs)
    scaled_peak = int(peak * scale_factor)
    analysis = ScalingAnalysis(
        peak_diffs_per_day=scaled_peak, storage_pb=TLPROJECT2_PB
    )
    return Figure3Report(
        days=[d.day for d in diffs],
        created=created,
        modified=modified,
        scale_factor=scale_factor,
        scaled_peak_diffs=scaled_peak,
        analysis=analysis,
    )
