"""Experiment harness: one runner per paper table/figure + reporting."""

from repro.harness.reporting import (
    ascii_chart,
    comparison_table,
    render_table,
)
from repro.harness.experiments import (
    Figure3Report,
    Table2Report,
    Table3Report,
    ThroughputReport,
    experiment_figure3,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_throughput,
)

__all__ = [
    "render_table",
    "comparison_table",
    "ascii_chart",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_throughput",
    "experiment_figure3",
    "Table2Report",
    "Table3Report",
    "ThroughputReport",
    "Figure3Report",
]
