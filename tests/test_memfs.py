"""Tests for the in-memory POSIX filesystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
    IsADirectory,
    NotADirectory,
)
from repro.fs.memfs import MemoryFilesystem, MutationKind
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    return MemoryFilesystem(clock=ManualClock())


class TestCreateAndRead:
    def test_create_then_read(self, fs):
        fs.create("/a.txt", b"hello")
        assert fs.read("/a.txt") == b"hello"

    def test_create_existing_rejected(self, fs):
        fs.create("/a.txt")
        with pytest.raises(FileExists):
            fs.create("/a.txt")

    def test_create_in_missing_directory_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.create("/no/such/file.txt")

    def test_create_under_file_rejected(self, fs):
        fs.create("/a.txt")
        with pytest.raises(NotADirectory):
            fs.create("/a.txt/b.txt")

    def test_non_bytes_data_rejected(self, fs):
        with pytest.raises(TypeError):
            fs.create("/a.txt", "string")  # type: ignore[arg-type]

    def test_read_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.read("/d")

    def test_read_missing_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.read("/missing")


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x")
        fs.create("/d/a")
        assert fs.listdir("/d") == ["a", "x"]

    def test_mkdir_existing_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileExists):
            fs.mkdir("/d")

    def test_mkdir_on_root_rejected(self, fs):
        with pytest.raises(InvalidPath):
            fs.mkdir("/")

    def test_makedirs_creates_chain(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.is_dir("/a/b/c")

    def test_makedirs_idempotent(self, fs):
        fs.makedirs("/a/b")
        fs.makedirs("/a/b", exist_ok=True)
        assert fs.is_dir("/a/b")

    def test_rmdir_empty(self, fs):
        fs.mkdir("/d")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_nonempty_rejected(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")

    def test_rmdir_on_file_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_listdir_on_file_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")

    def test_rmtree_removes_subtree(self, fs):
        fs.makedirs("/d/a/b")
        fs.create("/d/a/f1")
        fs.create("/d/a/b/f2")
        fs.rmtree("/d")
        assert not fs.exists("/d")

    def test_nlink_counts_subdirectories(self, fs):
        fs.mkdir("/d")
        assert fs.stat("/d").nlink == 2
        fs.mkdir("/d/sub")
        assert fs.stat("/d").nlink == 3
        fs.rmdir("/d/sub")
        assert fs.stat("/d").nlink == 2


class TestWriteTruncate:
    def test_write_replaces_content(self, fs):
        fs.create("/f", b"old")
        fs.write("/f", b"new")
        assert fs.read("/f") == b"new"

    def test_write_creates_when_missing(self, fs):
        fs.write("/f", b"data")
        assert fs.read("/f") == b"data"

    def test_write_no_create_rejected_when_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.write("/f", b"data", create=False)

    def test_append(self, fs):
        fs.create("/f", b"ab")
        fs.append("/f", b"cd")
        assert fs.read("/f") == b"abcd"

    def test_truncate_shrinks(self, fs):
        fs.create("/f", b"abcdef")
        fs.truncate("/f", 3)
        assert fs.read("/f") == b"abc"

    def test_truncate_extends_with_zeros(self, fs):
        fs.create("/f", b"ab")
        fs.truncate("/f", 4)
        assert fs.read("/f") == b"ab\x00\x00"

    def test_truncate_negative_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(ValueError):
            fs.truncate("/f", -1)

    def test_write_updates_mtime(self):
        clock = ManualClock()
        fs = MemoryFilesystem(clock=clock)
        fs.create("/f")
        clock.advance(10)
        fs.write("/f", b"x")
        assert fs.stat("/f").mtime == 10


class TestUnlink:
    def test_unlink_removes(self, fs):
        fs.create("/f")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_unlink_missing_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/f")


class TestRename:
    def test_rename_file(self, fs):
        fs.create("/a", b"data")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read("/b") == b"data"

    def test_rename_into_directory(self, fs):
        fs.create("/a")
        fs.mkdir("/d")
        fs.rename("/a", "/d/a")
        assert fs.exists("/d/a")

    def test_rename_replaces_existing_file(self, fs):
        fs.create("/a", b"new")
        fs.create("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read("/b") == b"new"

    def test_rename_directory(self, fs):
        fs.makedirs("/d/sub")
        fs.create("/d/sub/f")
        fs.rename("/d", "/e")
        assert fs.exists("/e/sub/f")

    def test_rename_dir_onto_nonempty_dir_rejected(self, fs):
        fs.mkdir("/a")
        fs.makedirs("/b/c")
        with pytest.raises(DirectoryNotEmpty):
            fs.rename("/a", "/b")

    def test_rename_dir_onto_empty_dir_allowed(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.rename("/a", "/b")
        assert fs.is_dir("/b")
        assert not fs.exists("/a")

    def test_rename_file_onto_dir_rejected(self, fs):
        fs.create("/f")
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.rename("/f", "/d")

    def test_rename_dir_into_itself_rejected(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(InvalidPath):
            fs.rename("/d", "/d/sub/d")

    def test_rename_missing_source_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.rename("/nope", "/b")


class TestWalkAndCounts:
    def test_walk_yields_expected_structure(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/f1")
        fs.create("/a/b/f2")
        walked = list(fs.walk("/a"))
        assert walked[0] == ("/a", ["b"], ["f1"])
        assert walked[1] == ("/a/b", [], ["f2"])

    def test_count_entries(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/f1")
        fs.create("/a/b/f2")
        n_dirs, n_files = fs.count_entries("/a")
        assert (n_dirs, n_files) == (2, 2)


class TestHooks:
    def test_hooks_observe_all_mutations(self, fs):
        seen = []
        fs.add_hook(lambda record: seen.append(record.kind))
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.write("/d/f", b"x")
        fs.setattr("/d/f", mode=0o600)
        fs.rename("/d/f", "/d/g")
        fs.unlink("/d/g")
        fs.rmdir("/d")
        assert seen == [
            MutationKind.MKDIR,
            MutationKind.CREATE,
            MutationKind.WRITE,
            MutationKind.SETATTR,
            MutationKind.RENAME,
            MutationKind.UNLINK,
            MutationKind.RMDIR,
        ]

    def test_rename_record_has_old_path(self, fs):
        records = []
        fs.add_hook(records.append)
        fs.create("/a")
        fs.rename("/a", "/b")
        rename = records[-1]
        assert rename.old_path == "/a"
        assert rename.path == "/b"

    def test_removed_hook_not_called(self, fs):
        seen = []
        hook = lambda record: seen.append(record)  # noqa: E731
        fs.add_hook(hook)
        fs.remove_hook(hook)
        fs.create("/f")
        assert seen == []

    def test_mutation_counts(self, fs):
        fs.create("/a")
        fs.create("/b")
        fs.unlink("/a")
        assert fs.mutation_counts[MutationKind.CREATE] == 2
        assert fs.mutation_counts[MutationKind.UNLINK] == 1


# ---------------------------------------------------------------------------
# Property-based: the filesystem agrees with a flat dict model
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])
_ops = st.lists(
    st.tuples(st.sampled_from(["create", "write", "unlink", "mkdir"]), _names),
    max_size=30,
)


class TestAgainstModel:
    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_flat_namespace_matches_dict_model(self, operations):
        fs = MemoryFilesystem(clock=ManualClock())
        model: dict[str, bytes | None] = {}  # None marks a directory
        for op, name in operations:
            path = "/" + name
            if op == "create":
                if name in model:
                    with pytest.raises(FileExists):
                        fs.create(path)
                else:
                    fs.create(path, b"v")
                    model[name] = b"v"
            elif op == "write":
                if model.get(name) is None and name in model:
                    with pytest.raises(IsADirectory):
                        fs.write(path, b"w")
                else:
                    fs.write(path, b"w")
                    model[name] = b"w"
            elif op == "unlink":
                if name not in model:
                    with pytest.raises(FileNotFound):
                        fs.unlink(path)
                elif model[name] is None:
                    with pytest.raises(IsADirectory):
                        fs.unlink(path)
                else:
                    fs.unlink(path)
                    del model[name]
            elif op == "mkdir":
                if name in model:
                    with pytest.raises(FileExists):
                        fs.mkdir(path)
                else:
                    fs.mkdir(path)
                    model[name] = None
        assert fs.listdir("/") == sorted(model)
        for name, content in model.items():
            if content is None:
                assert fs.is_dir("/" + name)
            else:
                assert fs.read("/" + name) == content
