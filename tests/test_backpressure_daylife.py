"""Backpressure behaviour and a day-in-the-life workload replay."""

import pytest

from repro.core import (
    AggregatorConfig,
    CollectorConfig,
    LustreMonitor,
    MonitorConfig,
    ProcessorConfig,
)
from repro.core.events import EventType
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock
from repro.workloads import EventGenerator


class TestBackpressure:
    def test_stalled_aggregator_blocks_collector_without_loss(self):
        """If the aggregator stops pumping, the bounded PUSH queue fills,
        collector reports fail (timeout), and records stay in the
        ChangeLog — nothing is dropped, everything flows once the
        aggregator resumes."""
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(read_batch=10),
                aggregator=AggregatorConfig(hwm=2),  # tiny transport queue
                report_timeout=0.01,  # fail fast instead of blocking
            ),
        )
        for index in range(100):
            fs.create(f"/d/f{index}")
        # Collector-only polling: the aggregator never pumps, so after
        # two batches the PUSH queue is full and sends time out.
        collector = monitor.collectors[0]
        for _ in range(10):
            collector.poll_once()
        assert collector.report_failures > 0
        assert fs.changelogs()[0].backlog > 0  # retained, not lost
        # Resume the aggregator: everything reaches the store, complete
        # and in order.  (A tiny-hwm live subscription would drop, which
        # is the documented PUB/SUB behaviour — the store is the source
        # of truth; see the next test.)
        monitor.drain()
        stored = [event.name for _seq, event in monitor.aggregator.store.since(0)]
        assert stored == [f"f{i}" for i in range(100)]
        assert fs.changelogs()[0].backlog == 0

    def test_subscriber_hwm_protects_aggregator_not_stream(self):
        """A slow subscriber loses messages (counted), but the store
        keeps them, so catch-up recovers the full stream.

        The subscriber HWM counts *messages*; ``batch_events=1`` flushes
        one event per message so the drop accounting is per-event here.
        """
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(
            fs, MonitorConfig(aggregator=AggregatorConfig(batch_events=1))
        )
        from repro.core.consumer import Consumer

        slow_config = AggregatorConfig(hwm=3, batch_events=1)
        seen = []
        slow = Consumer(monitor.context, lambda seq, ev: seen.append(seq),
                        config=slow_config, name="slow")
        monitor.consumers.append(slow)
        for index in range(50):
            fs.create(f"/d/f{index}")
        for collector in monitor.collectors:
            collector.poll_once()
        monitor.aggregator.pump_once()
        slow.poll_once()
        assert slow.dropped == 47
        slow.catch_up(api_server=monitor.aggregator)
        assert seen == list(range(1, 51))


class TestDayInTheLife:
    def test_nersc_scale_day_replayed_through_monitor(self):
        """Replay a tlproject2-like day (§5.3 scale: tens of thousands
        of creates/modifies at 1:1000) through the real monitor and
        check complete, loss-free delivery plus sensible rates."""
        clock = ManualClock()
        fs = LustreFilesystem(clock=clock)
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(
                    read_batch=512,
                    processor=ProcessorConfig(batch_size=64, cache_size=1024),
                )
            ),
        )
        counts = {t: 0 for t in EventType}
        monitor.subscribe(
            lambda seq, ev: counts.__setitem__(ev.event_type,
                                               counts[ev.event_type] + 1)
        )
        generator = EventGenerator(fs, directory="/day", seed=42)
        records = generator.generate_mixed(
            n_ops=5000,
            create_weight=0.45,
            modify_weight=0.40,
            delete_weight=0.15,
            n_directories=32,
        )
        monitor.drain()
        delivered = sum(counts.values())
        # Everything generated after the collectors registered arrives:
        # the /day mkdir, the per-directory mkdirs and all mixed ops.
        assert delivered == fs.total_changelog_records()
        assert delivered >= records
        assert counts[EventType.CREATED] > 0
        assert counts[EventType.MODIFIED] > 0
        assert counts[EventType.DELETED] > 0
        # Directory locality keeps the resolver almost idle.
        stats = monitor.stats()
        assert stats.resolver_invocations < records / 20
        assert stats.unresolved_events == 0
        assert all(cl.backlog == 0 for cl in fs.changelogs())
