"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_throughput_defaults(self):
        args = build_parser().parse_args(["throughput"])
        assert args.testbed == "iota"
        assert args.batch_size == 1
        assert args.transport == "pushpull"

    def test_bad_transport_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["throughput", "--transport", "smoke"])


class TestCommands:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "throughput", "table3", "figure3"):
            assert name in out

    def test_experiments_run_table1(self, capsys):
        assert main(["experiments", "run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "01CREAT" in out
        assert "06UNLNK" in out

    def test_experiments_run_table2(self, capsys):
        assert main(["experiments", "run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "AWS" in out and "Iota" in out
        assert "1,366" in out

    def test_experiments_run_unknown(self, capsys):
        assert main(["experiments", "run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_throughput_custom_knobs(self, capsys):
        code = main([
            "throughput", "--testbed", "aws", "--duration", "5",
            "--batch-size", "32", "--cache-size", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AWS" in out
        assert "monitor throughput" in out

    def test_throughput_unknown_testbed(self):
        with pytest.raises(SystemExit):
            main(["throughput", "--testbed", "mars"])

    def test_figure3(self, capsys):
        assert main(["figure3", "--days", "8", "--base-files", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Aurora" in out

    def test_changelog_demo(self, capsys):
        assert main(["changelog-demo"]) == 0
        out = capsys.readouterr().out
        assert "01CREAT" in out
        assert "08RENME" in out
        assert "MDT0" in out

    def test_changelog_demo_multi_mds(self, capsys):
        assert main(["changelog-demo", "--num-mds", "2"]) == 0
        assert "ChangeLog" in capsys.readouterr().out

    def test_rules_validate_ok(self, capsys, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            "# notify\n"
            "WHEN created OF *.csv UNDER /in ON dev\n"
            "THEN email ON dev WITH to=pi@lab\n"
        )
        assert main(["rules", str(rules)]) == 0
        out = capsys.readouterr().out
        assert "1 rule(s) OK" in out
        assert "notify" in out

    def test_rules_validate_bad_file(self, capsys, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("WHEN created OF * UNDER /d ON a\nTHEN teleport ON a\n")
        assert main(["rules", str(rules)]) == 1
        assert "invalid rules file" in capsys.readouterr().err

    def test_rules_missing_file(self, capsys, tmp_path):
        assert main(["rules", str(tmp_path / "nope.txt")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_metrics_demo(self, capsys):
        assert main(["metrics-demo", "--events", "120", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        for stage in ("collect", "aggregate", "publish", "deliver"):
            assert stage in out
        for column in ("p50", "p95", "p99"):
            assert column in out

    def test_metrics_demo_prometheus(self, capsys):
        code = main(["metrics-demo", "--events", "60", "--prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro_pipeline_collect_bucket" in out
        assert "# TYPE" in out

    def test_metrics_demo_sampling_off(self, capsys):
        code = main(["metrics-demo", "--events", "60", "--sample-rate", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tracing disabled" in out

    def test_cluster_demo(self, capsys):
        code = main([
            "cluster-demo", "--shards", "3", "--num-mds", "2",
            "--events", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 shard(s)" in out
        assert "shard crashed" in out
        assert "none lost" in out
        assert "merged cluster stats" in out
        for shard in ("shard0", "shard1", "shard2"):
            assert shard in out

    def test_gateway_demo_defaults(self):
        args = build_parser().parse_args(["gateway-demo"])
        assert args.shards == 2
        assert args.transport == "inproc"
        assert args.clients == 10
        assert args.events == 100

    def test_gateway_demo(self, capsys):
        code = main([
            "gateway-demo", "--shards", "2", "--num-mds", "2",
            "--clients", "3", "--events", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gateway at http://" in out
        assert "returned 30 created events" in out
        assert "bogus token -> HTTP 401" in out
        assert "lost=0" in out
        assert "bob's stream (other subtree): 0 events" in out
        assert "gateway counters" in out
