"""Tests for the multi-tenant gateway tier.

Covers the layers bottom-up:

* auth store — key/session lifecycle, expiry on a ManualClock, and the
  request token bucket's exact boundary;
* opaque cursors — encode/decode round-trip (property-based) and
  rejection of malformed or foreign tokens;
* filter push-down — the RuleIndex-pruned gateway path returns exactly
  the events the reference linear filter accepts (property-based,
  mirroring the ``matching`` ≡ ``matching_linear`` discipline);
* fan-out hub — per-subscriber bounded queues, rate-limit shedding on
  a deterministic clock, and tenant isolation;
* the live service — REST statuses (200/401/429), WebSocket handshake
  and rejection before upgrade, cursor-paged backfill over a started
  multi-shard cluster, and the acceptance scenario: 200+ concurrent
  subscribers across three tenants each receiving exactly their
  tenant's events exactly once while a slow consumer sheds without
  stalling anyone else.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterMonitor,
    decode_cursor,
    encode_cursor,
)
from repro.core.events import EventType, FileEvent
from repro.gateway import (
    AuthError,
    AuthStore,
    FilterIndexCache,
    GatewayClient,
    Quota,
    QuotaExceeded,
    StreamHub,
    StreamRejected,
    StreamSubscriber,
    SubscriptionFilter,
    attach_gateway,
    parse_filter,
)
from repro.gateway.http import (
    OP_PING,
    OP_TEXT,
    FrameParser,
    encode_frame,
)
from repro.lustre import LustreFilesystem
from repro.metrics.registry import MetricsRegistry
from repro.ripple.index import RuleIndex
from repro.telemetry.alerts import recommended_rules
from repro.util.clock import ManualClock


def make_event(path, event_type=EventType.CREATED, is_dir=False):
    return FileEvent(
        event_type=event_type, path=path, is_dir=is_dir, timestamp=1.0,
        name=path.rsplit("/", 1)[-1], source="test",
    )


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Auth store
# ---------------------------------------------------------------------------


class TestAuthStore:
    def test_key_session_lifecycle(self):
        store = AuthStore(clock=ManualClock())
        record = store.issue_key("alice")
        session = store.authenticate(record.key)
        assert session.tenant == "alice"
        assert store.session(session.token).token == session.token
        with pytest.raises(AuthError):
            store.authenticate("not-a-key")
        with pytest.raises(AuthError):
            store.session("not-a-token")
        with pytest.raises(AuthError):
            store.session(None)

    def test_session_expiry_on_manual_clock(self):
        clock = ManualClock()
        store = AuthStore(clock=clock, session_ttl=60.0)
        session = store.authenticate(store.issue_key("alice").key)
        clock.advance(59.9)
        assert store.session(session.token).tenant == "alice"
        clock.advance(0.2)
        with pytest.raises(AuthError, match="expired"):
            store.session(session.token)

    def test_revoke_kills_sessions(self):
        store = AuthStore(clock=ManualClock())
        record = store.issue_key("alice")
        session = store.authenticate(record.key)
        assert store.revoke_key(record.key)
        with pytest.raises(AuthError):
            store.session(session.token)
        with pytest.raises(AuthError):
            store.authenticate(record.key)
        assert not store.revoke_key("unknown")

    def test_request_bucket_boundary_exact(self):
        clock = ManualClock()
        store = AuthStore(clock=clock)
        quota = Quota(requests_per_sec=1.0, request_burst=2.0)
        session = store.authenticate(
            store.issue_key("alice", quota=quota).key
        )
        assert store.check_request(session.token)
        assert store.check_request(session.token)
        with pytest.raises(QuotaExceeded):
            store.check_request(session.token)
        clock.advance(1.0)  # refills exactly one token
        assert store.check_request(session.token)
        with pytest.raises(QuotaExceeded):
            store.check_request(session.token)
        metrics = store.tenant_metrics("alice").snapshot()
        assert metrics["requests"] == 3
        assert metrics["rate_limited"] == 2

    def test_tenant_scopes_are_unique(self):
        registry = MetricsRegistry()
        store = AuthStore(registry=registry)
        store.issue_key("alice")
        store.issue_key("bob")
        alice = store.tenant_metrics("alice")
        assert alice is store.tenant_metrics("alice")
        assert alice.scope != store.tenant_metrics("bob").scope
        assert alice.scope.startswith("gateway_tenant_alice")

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            Quota(max_page_size=0)
        with pytest.raises(ValueError):
            Quota(stream_queue=0)


# ---------------------------------------------------------------------------
# Opaque cursors
# ---------------------------------------------------------------------------


class TestCursors:
    @given(
        st.dictionaries(
            st.sampled_from(["shard0", "shard1", "shard2", "shard3"]),
            st.integers(min_value=0, max_value=2**40),
        )
    )
    def test_roundtrip(self, watermarks):
        token = encode_cursor(watermarks)
        assert decode_cursor(token) == watermarks
        assert "=" not in token  # URL-safe, unpadded

    def test_empty_cursor(self):
        assert decode_cursor(None) == {}
        assert decode_cursor("") == {}

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_cursor("!!!not-base64!!!")
        with pytest.raises(ValueError):
            decode_cursor("aGVsbG8")  # valid base64, not a JSON object

    def test_foreign_shards_rejected(self):
        token = encode_cursor({"shard9": 12})
        with pytest.raises(ValueError, match="unknown shard"):
            decode_cursor(token, ("shard0", "shard1"))


# ---------------------------------------------------------------------------
# Filter push-down equivalence
# ---------------------------------------------------------------------------


_SEGMENTS = st.sampled_from(["proj", "alice", "bob", "run1", "data"])
_NAMES = st.sampled_from(
    ["out.h5", "out.log", "scan.tiff", "notes.txt", "f"]
)
_PATHS = st.builds(
    lambda segs, name: "/" + "/".join(list(segs) + [name]),
    st.lists(_SEGMENTS, min_size=0, max_size=3),
    _NAMES,
)
_EVENTS = st.builds(
    make_event,
    _PATHS,
    st.sampled_from(list(EventType)),
    st.booleans(),
)
_FILTERS = st.builds(
    SubscriptionFilter,
    path_prefix=st.builds(
        lambda segs: "/" + "/".join(segs),
        st.lists(_SEGMENTS, min_size=0, max_size=2),
    ),
    event_types=st.one_of(
        st.none(),
        st.frozensets(
            st.sampled_from(list(EventType)), min_size=1, max_size=3
        ),
    ),
    name_pattern=st.sampled_from(["*", "*.h5", "*.tiff", "out.*"]),
    include_directories=st.booleans(),
)


class TestFilterPushdown:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_EVENTS, max_size=30), _FILTERS)
    def test_index_pruning_equals_linear_filtering(self, events, filt):
        """Gateway-side RuleIndex pruning == client-side linear filter."""
        index = RuleIndex([filt.to_rule()])
        pushed_down = [
            event
            for event, rules in index.matching_batch(events)
            if rules
        ]
        linear = [event for event in events if filt.matches(event)]
        assert pushed_down == linear

    def test_parse_filter_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            parse_filter(types="created,exploded")

    def test_parse_filter_defaults(self):
        filt = parse_filter()
        assert filt.path_prefix == "/"
        assert filt.event_types is None
        assert filt.matches(make_event("/any/f"))

    def test_describe_is_stable(self):
        filt = parse_filter(
            prefix="/proj", types="created", pattern="*.h5"
        )
        assert "/proj" in filt.describe()
        assert "created" in filt.describe()


class TestFilterIndexCache:
    def test_identical_filters_share_one_index(self):
        cache = FilterIndexCache(maxsize=4)
        first, hit_a = cache.get(
            parse_filter(prefix="/proj", types="created", pattern="*.h5")
        )
        second, hit_b = cache.get(
            parse_filter(prefix="/proj", types="created", pattern="*.h5")
        )
        assert (hit_a, hit_b) == (False, True)
        assert first is second
        assert (cache.misses, cache.hits) == (1, 1)

    def test_distinct_filters_do_not_collide(self):
        cache = FilterIndexCache()
        index_a, hit_a = cache.get(parse_filter(prefix="/a"))
        index_b, hit_b = cache.get(parse_filter(prefix="/b"))
        assert not hit_a and not hit_b
        assert index_a is not index_b

    def test_key_normalizes_prefix(self):
        # "/proj/alice" and "/proj/alice/" are the same subtree; the
        # cache must not compile two indexes for them.
        cache = FilterIndexCache()
        first, _ = cache.get(parse_filter(prefix="/proj/alice"))
        second, hit = cache.get(parse_filter(prefix="/proj/alice/"))
        assert hit and first is second

    def test_lru_evicts_oldest(self):
        cache = FilterIndexCache(maxsize=2)
        cache.get(parse_filter(prefix="/a"))
        cache.get(parse_filter(prefix="/b"))
        cache.get(parse_filter(prefix="/c"))  # evicts /a
        assert len(cache) == 2
        _, hit = cache.get(parse_filter(prefix="/a"))
        assert not hit


# ---------------------------------------------------------------------------
# Fan-out hub
# ---------------------------------------------------------------------------


class TestStreamHub:
    def _hub(self, clock=None):
        registry = MetricsRegistry()
        return StreamHub(registry.scoped("gateway"), clock=clock), registry

    def test_shed_on_full_queue(self):
        quota = Quota(stream_queue=2)
        sub = StreamSubscriber("t", SubscriptionFilter(), quota)
        assert sub.offer(b"a")
        assert sub.offer(b"b")
        assert not sub.offer(b"c")  # queue full -> shed
        assert sub.delivered == 2
        assert sub.shed == 1
        assert sub.drain() == [b"a", b"b"]
        assert sub.offer(b"d")  # drained -> accepts again

    def test_shed_on_rate_limit_boundary(self):
        clock = ManualClock()
        quota = Quota(
            stream_events_per_sec=1.0, stream_burst=2.0, stream_queue=100
        )
        sub = StreamSubscriber(
            "t", SubscriptionFilter(), quota, clock=clock
        )
        assert sub.offer(b"a")
        assert sub.offer(b"b")
        assert not sub.offer(b"c")  # bucket empty -> shed
        clock.advance(1.0)
        assert sub.offer(b"d")
        assert sub.shed == 1

    def test_closed_subscriber_refuses(self):
        sub = StreamSubscriber("t", SubscriptionFilter(), Quota())
        sub.close()
        assert not sub.offer(b"a")
        assert sub.shed == 0  # closed is not shed

    def test_fanout_respects_filters(self):
        hub, _registry = self._hub()
        alice = hub.subscribe(
            "alice", SubscriptionFilter(path_prefix="/proj/alice"), Quota()
        )
        bob = hub.subscribe(
            "bob", SubscriptionFilter(path_prefix="/proj/bob"), Quota()
        )
        entries = [
            (1, make_event("/proj/alice/a.h5")),
            (2, make_event("/proj/bob/b.h5")),
            (3, make_event("/proj/alice/c.h5")),
            (4, make_event("/elsewhere/d.h5")),
        ]
        delivered = hub.publish_entries(entries, source="shard0")
        assert delivered == 3
        assert alice.delivered == 2
        assert bob.delivered == 1
        parser = FrameParser()
        frames = []
        for frame in alice.drain():
            frames.extend(parser.feed(frame))
        assert [opcode for opcode, _ in frames] == [OP_TEXT, OP_TEXT]
        import json

        decoded = [json.loads(payload) for _op, payload in frames]
        assert [d["event"]["path"] for d in decoded] == [
            "/proj/alice/a.h5", "/proj/alice/c.h5",
        ]
        assert all(d["shard"] == "shard0" for d in decoded)

    def test_one_slow_subscriber_does_not_stall_others(self):
        hub, registry = self._hub()
        slow = hub.subscribe(
            "slow",
            SubscriptionFilter(),
            Quota(stream_queue=2),
        )
        fast = hub.subscribe("fast", SubscriptionFilter(), Quota())
        entries = [(seq, make_event(f"/d/f{seq}")) for seq in range(1, 21)]
        hub.publish_entries(entries)
        assert fast.delivered == 20
        assert slow.delivered == 2
        assert slow.shed == 18
        snapshot = registry.snapshot("gateway")
        assert snapshot["stream_shed"] == 18
        assert snapshot["stream_delivered"] == 22

    def test_unsubscribe_removes_from_index(self):
        hub, _registry = self._hub()
        sub = hub.subscribe("t", SubscriptionFilter(), Quota())
        assert hub.streams_for("t") == 1
        hub.unsubscribe(sub)
        assert hub.streams_for("t") == 0
        assert hub.publish_entries([(1, make_event("/d/f"))]) == 0


# ---------------------------------------------------------------------------
# WebSocket framing
# ---------------------------------------------------------------------------


class TestFraming:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=300), st.booleans(), st.integers(1, 7))
    def test_frame_roundtrip_any_chunking(self, payload, mask, chunk):
        wire = encode_frame(OP_TEXT, payload, mask=mask)
        parser = FrameParser()
        messages = []
        for start in range(0, len(wire), chunk):
            messages.extend(parser.feed(wire[start:start + chunk]))
        assert messages == [(OP_TEXT, payload)]

    def test_control_frames_between_data(self):
        parser = FrameParser()
        wire = (
            encode_frame(OP_PING, b"hb")
            + encode_frame(OP_TEXT, b"data", mask=True)
        )
        assert parser.feed(wire) == [(OP_PING, b"hb"), (OP_TEXT, b"data")]


# ---------------------------------------------------------------------------
# Live gateway over a started cluster
# ---------------------------------------------------------------------------


@pytest.fixture
def live_gateway():
    fs = LustreFilesystem(num_mds=2)
    for tenant in ("alice", "bob", "carol"):
        fs.makedirs(f"/proj/{tenant}")
    cluster = ClusterMonitor(fs, ClusterConfig(num_shards=2))
    gateway = attach_gateway(cluster)
    cluster.start()
    try:
        yield fs, cluster, gateway, GatewayClient(gateway.host, gateway.port)
    finally:
        cluster.shutdown()


class TestGatewayService:
    def test_auth_statuses(self, live_gateway):
        _fs, _cluster, gateway, api = live_gateway
        key = gateway.auth.issue_key("alice")
        payload = api.auth(key.key)
        assert payload["tenant"] == "alice"
        status, body = api.request("POST", "/v1/auth", body={"key": "bad"})
        assert status == 401 and "error" in body
        status, _body = api.request("POST", "/v1/auth", body={"nope": 1})
        assert status == 400
        status, _body = api.request("GET", "/v1/auth")
        assert status == 405
        status, _body = api.request("GET", "/v1/missing")
        assert status == 404
        assert gateway.metrics.value("auth_failures") == 1

    def test_events_requires_auth_and_respects_quota(self, live_gateway):
        _fs, _cluster, gateway, api = live_gateway
        status, _ = api.request("GET", "/v1/events")
        assert status == 401
        status, _ = api.request("GET", "/v1/events", token="bogus")
        assert status == 401
        key = gateway.auth.issue_key(
            "alice", quota=Quota(requests_per_sec=0.001, request_burst=2.0)
        )
        token = api.auth(key.key)["token"]
        assert api.request("GET", "/v1/events", token=token)[0] == 200
        assert api.request("GET", "/v1/events", token=token)[0] == 200
        status, body = api.request("GET", "/v1/events", token=token)
        assert status == 429 and "exceeded" in body["error"]
        assert gateway.metrics.value("rate_limited") == 1

    def test_backfill_paged_and_filtered(self, live_gateway):
        fs, _cluster, gateway, api = live_gateway
        for index in range(30):
            fs.create(f"/proj/alice/pre{index}.h5")
            fs.create(f"/proj/bob/other{index}.log")
        token = api.auth(gateway.auth.issue_key("alice").key)["token"]
        assert wait_until(
            lambda: len(
                api.events_all(token, prefix="/proj/alice", types="created")
            ) >= 30
        )
        # Page size 7 forces multiple cursor hops; nothing skipped or
        # duplicated, and bob's subtree is pruned server-side.
        events = api.events_all(
            token, prefix="/proj/alice", types="created", limit=7
        )
        paths = [entry["event"]["path"] for entry in events]
        assert sorted(paths) == sorted(
            f"/proj/alice/pre{i}.h5" for i in range(30)
        )
        assert len(set(paths)) == 30

        # A resumed cursor sees only what happened after it.
        page = api.events(token, prefix="/proj/alice", types="created")
        cursor = page["cursor"]
        assert page["exhausted"]
        fs.create("/proj/alice/fresh.h5")
        assert wait_until(
            lambda: [
                entry["event"]["path"]
                for entry in api.events_all(
                    token, prefix="/proj/alice", types="created",
                    cursor=cursor,
                )
            ] == ["/proj/alice/fresh.h5"]
        )
        assert gateway.metrics.value("events_scanned") > 0

    def test_repeated_queries_reuse_filter_cache(self, live_gateway):
        fs, _cluster, gateway, api = live_gateway
        fs.create("/proj/alice/a.h5")
        token = api.auth(gateway.auth.issue_key("alice").key)["token"]
        assert wait_until(
            lambda: api.events(token, prefix="/proj/alice")["matched"] > 0
        )
        hits_before = gateway.metrics.value("filter_cache_hits")
        misses_before = gateway.metrics.value("filter_cache_misses")
        for _ in range(3):
            api.events(token, prefix="/proj/alice", types="created")
        # One compile at most for the new (prefix, types) shape; the
        # repeats ride the cached index.
        assert (
            gateway.metrics.value("filter_cache_misses") - misses_before <= 1
        )
        assert gateway.metrics.value("filter_cache_hits") - hits_before >= 2

    def test_page_limit_clamped_to_quota(self, live_gateway):
        fs, _cluster, gateway, api = live_gateway
        for index in range(12):
            fs.create(f"/proj/alice/f{index}")
        key = gateway.auth.issue_key(
            "alice", quota=Quota(max_page_size=5)
        )
        token = api.auth(key.key)["token"]
        assert wait_until(
            lambda: api.events(token, prefix="/proj/alice")["matched"] > 0
        )
        page = api.events(token, prefix="/proj/alice", limit=500)
        assert page["matched"] <= 5

    def test_stats_and_health(self, live_gateway):
        _fs, _cluster, gateway, api = live_gateway
        token = api.auth(gateway.auth.issue_key("alice").key)["token"]
        stats = api.stats(token)
        assert "gateway" in stats and "cluster" in stats
        assert stats["tenants"]["alice"]["auth_ok"] == 1
        status, payload = api.health()
        assert status == 200
        assert payload["degraded"] is False
        assert payload["gateway"]["state"] == "running"
        assert "services" in payload["cluster"]

    def test_stream_rejected_before_upgrade(self, live_gateway):
        _fs, _cluster, gateway, api = live_gateway
        with pytest.raises(StreamRejected) as excinfo:
            api.stream("bogus-token")
        assert excinfo.value.status == 401
        key = gateway.auth.issue_key("alice", quota=Quota(max_streams=1))
        token = api.auth(key.key)["token"]
        stream = api.stream(token, prefix="/proj/alice")
        try:
            with pytest.raises(StreamRejected) as excinfo:
                api.stream(token, prefix="/proj/alice")
            assert excinfo.value.status == 429
        finally:
            stream.close()
        assert gateway.metrics.value("ws_rejects") == 2

    def test_acceptance_fanout_exactly_once(self, live_gateway):
        """200+ subscribers, 3 tenants: every matching event exactly
        once, filters enforced server-side, counter-verified."""
        fs, _cluster, gateway, api = live_gateway
        tenants = ("alice", "bob", "carol")
        per_tenant = 68  # 204 concurrent sockets total
        events_each = 25
        quota = Quota(max_streams=128, request_burst=300.0)
        streams = {}
        for tenant in tenants:
            token = api.auth(gateway.auth.issue_key(tenant, quota=quota).key)[
                "token"
            ]
            streams[tenant] = [
                api.stream(token, prefix=f"/proj/{tenant}", types="created")
                for _ in range(per_tenant)
            ]
        try:
            for index in range(events_each):
                for tenant in tenants:
                    fs.create(f"/proj/{tenant}/live{index}.dat")

            all_streams = [s for group in streams.values() for s in group]

            def everyone_done():
                for stream in all_streams:
                    stream.pump(0.0)
                return all(
                    len(s.received) >= events_each for s in all_streams
                )

            assert wait_until(everyone_done, timeout=30.0)
            expected = {
                tenant: sorted(
                    f"/proj/{tenant}/live{i}.dat" for i in range(events_each)
                )
                for tenant in tenants
            }
            for tenant in tenants:
                for stream in streams[tenant]:
                    paths = [
                        message["event"]["path"]
                        for message in stream.received
                    ]
                    # Exactly once: every matching event, no duplicates,
                    # nothing from any other tenant's subtree.
                    assert sorted(paths) == expected[tenant]
            # Counter-verified through the shared metrics plane.
            total = len(tenants) * per_tenant * events_each
            assert gateway.metrics.value("stream_delivered") == total
            assert gateway.metrics.value("stream_shed") == 0
            assert gateway.metrics.value("ws_connects") == len(all_streams)
        finally:
            for group in streams.values():
                for stream in group:
                    stream.close()

    def test_slow_consumer_sheds_without_stalling(self, live_gateway):
        fs, _cluster, gateway, api = live_gateway
        slow_key = gateway.auth.issue_key(
            "alice",
            quota=Quota(stream_events_per_sec=0.001, stream_burst=5.0),
        )
        fast_key = gateway.auth.issue_key("bob")
        slow = api.stream(
            api.auth(slow_key.key)["token"], prefix="/proj", types="created"
        )
        fast = api.stream(
            api.auth(fast_key.key)["token"], prefix="/proj", types="created"
        )
        try:
            for index in range(50):
                fs.create(f"/proj/carol/f{index}.dat")
            def fast_caught_up():
                fast.pump(0.0)
                return len(fast.received) >= 50

            assert wait_until(fast_caught_up, timeout=20.0)
            slow.pump(0.2)
            assert len(fast.received) == 50  # the fast tenant saw it all
            assert len(slow.received) <= 5  # burst only; the rest shed
            assert wait_until(
                lambda: gateway.metrics.value("stream_shed") >= 45
            )
            tenant_shed = gateway.auth.tenant_metrics("alice").value(
                "stream_shed"
            )
            assert tenant_shed >= 45
        finally:
            slow.close()
            fast.close()

    def test_tenant_series_reach_prometheus(self, live_gateway):
        _fs, _cluster, gateway, api = live_gateway
        api.auth(gateway.auth.issue_key("alice").key)
        exposition = gateway.metrics.registry.render_prometheus()
        assert "gateway_tenant_alice" in exposition
        assert 'scope="gateway"' in exposition


# ---------------------------------------------------------------------------
# Stock alert rules
# ---------------------------------------------------------------------------


class TestGatewayAlertRules:
    def test_recommended_rules_cover_gateway(self):
        names = {rule.name for rule in recommended_rules()}
        assert {"gateway-auth-failures", "gateway-stream-shed"} <= names

    def test_gateway_rules_match_gateway_series(self):
        rules = {rule.name: rule for rule in recommended_rules()}
        assert rules["gateway-auth-failures"].metric == "*.auth_failures"
        assert rules["gateway-stream-shed"].kind == "rate"
