"""Tests for the Lustre client filesystem, MDS cluster and OSS pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    LustreError,
    NotADirectory,
    UnknownFid,
)
from repro.lustre import DnePolicy, LustreFilesystem
from repro.lustre.changelog import ChangelogFlag, RecordType
from repro.lustre.mds import MdtCluster
from repro.lustre.oss import OstPool
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    return LustreFilesystem(clock=ManualClock())


class TestNamespaceOps:
    def test_create_and_stat(self, fs):
        fs.create("/f", size=100)
        stat = fs.stat("/f")
        assert stat.is_file
        assert stat.size == 100

    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/b")
        fs.create("/d/a")
        assert fs.listdir("/d") == ["a", "b"]

    def test_duplicate_create_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(FileExists):
            fs.create("/f")

    def test_write_updates_size(self, fs):
        fs.create("/f")
        fs.write("/f", 4096)
        assert fs.stat("/f").size == 4096

    def test_write_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.write("/d", 10)

    def test_unlink_removes(self, fs):
        fs.create("/f")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_rmdir_nonempty_rejected(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")

    def test_rename_moves_subtree(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/b/f")
        fs.rename("/a", "/z")
        assert fs.exists("/z/b/f")
        assert not fs.exists("/a")

    def test_rename_overwrite_file(self, fs):
        fs.create("/src", size=7)
        fs.create("/dst", size=9)
        fs.rename("/src", "/dst")
        assert fs.stat("/dst").size == 7

    def test_hardlink_shares_fid(self, fs):
        fs.create("/f")
        fs.hardlink("/f", "/link")
        assert fs.fid_of("/f") == fs.fid_of("/link")
        assert fs.stat("/f").nlink == 2

    def test_unlink_one_hardlink_keeps_file(self, fs):
        fs.create("/f", size=5)
        fs.hardlink("/f", "/link")
        fs.unlink("/f")
        assert fs.stat("/link").size == 5

    def test_symlink(self, fs):
        fs.create("/target")
        fs.symlink("/target", "/sym")
        assert fs.stat("/sym").kind == "symlink"

    def test_walk(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/f")
        levels = list(fs.walk("/a"))
        assert levels[0] == ("/a", ["b"], ["f"])

    def test_rmtree(self, fs):
        fs.makedirs("/a/b/c")
        fs.create("/a/b/c/f")
        fs.rmtree("/a")
        assert not fs.exists("/a")

    def test_missing_path_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.stat("/nope")


class TestFids:
    def test_fid_of_and_path_of_roundtrip(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/b/f")
        fid = fs.fid_of("/a/b/f")
        assert fs.path_of(fid) == "/a/b/f"

    def test_path_of_deleted_fid_rejected(self, fs):
        fs.create("/f")
        fid = fs.fid_of("/f")
        fs.unlink("/f")
        with pytest.raises(UnknownFid):
            fs.path_of(fid)

    def test_path_of_follows_renames(self, fs):
        fs.create("/old")
        fid = fs.fid_of("/old")
        fs.rename("/old", "/new")
        assert fs.path_of(fid) == "/new"


class TestChangelogRecords:
    def test_create_appends_creat(self, fs):
        fs.create("/f")
        (record,) = fs.changelogs()[0].dump()
        assert "01CREAT" in record
        assert record.endswith("f")

    def test_unlink_last_sets_flag(self, fs):
        fs.create("/f")
        fs.unlink("/f")
        user_visible = list(fs.changelogs()[0].dump())
        assert "0x1" in user_visible[-1].split()[4]

    def test_unlink_of_hardlinked_file_not_last(self, fs):
        fs.create("/f")
        fs.hardlink("/f", "/l")
        fs.unlink("/f")
        lines = list(fs.changelogs()[0].dump())
        unlink_line = [line for line in lines if "06UNLNK" in line][-1]
        assert unlink_line.split()[4] == "0x0"

    def test_rename_records_source_fields(self, fs):
        fs.mkdir("/d")
        fs.create("/d/a")
        fs.rename("/d/a", "/d/b")
        changelog = fs.changelogs()[0]
        user = None  # use raw record list via read after registering before ops
        # Re-derive: last appended record is the RENME.
        records = list(changelog._records)
        rename = records[-1]
        assert rename.rec_type is RecordType.RENME
        assert rename.name == "b"
        assert rename.source_name == "a"

    def test_record_sequence_for_full_lifecycle(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.write("/d/f", 10)
        fs.setattr("/d/f", mode=0o600)
        fs.truncate("/d/f", 0)
        fs.unlink("/d/f")
        fs.rmdir("/d")
        types = [r.rec_type for r in fs.changelogs()[0]._records]
        assert types == [
            RecordType.MKDIR,
            RecordType.CREAT,
            RecordType.CLOSE,
            RecordType.SATTR,
            RecordType.TRUNC,
            RecordType.UNLNK,
            RecordType.RMDIR,
        ]


class TestDnePlacement:
    def test_single_policy_keeps_everything_on_mdt0(self):
        fs = LustreFilesystem(num_mds=4, dne_policy=DnePolicy.SINGLE)
        fs.makedirs("/a/b/c")
        fs.create("/a/b/c/f")
        totals = [mdt.changelog.total_appended for mdt in fs.cluster.all_mdts()]
        assert totals[0] == 4
        assert sum(totals[1:]) == 0

    def test_hash_policy_spreads_directories(self):
        fs = LustreFilesystem(num_mds=4, dne_policy=DnePolicy.HASH)
        for index in range(32):
            fs.mkdir(f"/dir{index}")
        used = {
            mdt.index
            for mdt in fs.cluster.all_mdts()
            if mdt.changelog.total_appended > 0
        }
        assert len(used) >= 3  # hash should hit most MDTs

    def test_round_robin_policy_cycles(self):
        fs = LustreFilesystem(num_mds=2, dne_policy=DnePolicy.ROUND_ROBIN)
        fs.mkdir("/a")
        fs.mkdir("/b")
        indices = {fs.stat("/a").mdt_index, fs.stat("/b").mdt_index}
        assert indices == {0, 1}

    def test_files_served_by_parent_mdt(self):
        fs = LustreFilesystem(num_mds=2, dne_policy=DnePolicy.ROUND_ROBIN)
        fs.mkdir("/a")  # mdt0
        fs.mkdir("/b")  # mdt1
        fs.create("/b/f")
        assert fs.stat("/b/f").mdt_index == fs.stat("/b").mdt_index

    def test_cross_mdt_rename_emits_rnmto(self):
        fs = LustreFilesystem(num_mds=2, dne_policy=DnePolicy.ROUND_ROBIN)
        fs.mkdir("/a")
        fs.mkdir("/b")
        src_mdt = fs.stat("/a").mdt_index
        dst_mdt = fs.stat("/b").mdt_index
        assert src_mdt != dst_mdt
        fs.create("/a/f")
        fs.rename("/a/f", "/b/f")
        src_types = [r.rec_type for r in fs.cluster.mdt(src_mdt).changelog._records]
        dst_types = [r.rec_type for r in fs.cluster.mdt(dst_mdt).changelog._records]
        assert RecordType.RENME in src_types
        assert RecordType.RNMTO in dst_types

    def test_inherit_policy_keeps_children_with_parent(self):
        fs = LustreFilesystem(num_mds=2, dne_policy=DnePolicy.INHERIT)
        fs.mkdir("/a")
        fs.makedirs("/a/deep/deeper")
        assert (
            fs.stat("/a/deep/deeper").mdt_index == fs.stat("/a").mdt_index
        )


class TestCluster:
    def test_build_names_servers(self):
        cluster = MdtCluster.build(num_mds=2, mdts_per_mds=2)
        assert [s.name for s in cluster.servers] == ["mds0", "mds1"]
        assert cluster.mdt_count == 4

    def test_server_for_mdt(self):
        cluster = MdtCluster.build(num_mds=2, mdts_per_mds=2)
        assert cluster.server_for_mdt(3).name == "mds1"

    def test_unknown_mdt_rejected(self):
        cluster = MdtCluster.build()
        with pytest.raises(LustreError):
            cluster.mdt(9)


class TestOss:
    def test_striping_distributes_bytes(self):
        pool = OstPool.build(num_oss=1, osts_per_oss=4)
        layout = pool.allocate_layout(stripe_count=4, stripe_size=100)
        pool.write_layout(layout, 250)
        sizes = sorted(pool.ost(i).used_bytes for i in range(4))
        assert sizes == [0, 50, 100, 100]
        assert pool.used_bytes == 250

    def test_stripe_count_capped_at_ost_count(self):
        pool = OstPool.build(num_oss=1, osts_per_oss=2)
        layout = pool.allocate_layout(stripe_count=8)
        assert layout.stripe_count == 2

    def test_round_robin_start_rotates(self):
        pool = OstPool.build(num_oss=1, osts_per_oss=3)
        first = pool.allocate_layout(stripe_count=1)
        second = pool.allocate_layout(stripe_count=1)
        assert first.objects[0][0] != second.objects[0][0]

    def test_destroy_releases_bytes(self):
        pool = OstPool.build()
        layout = pool.allocate_layout()
        pool.write_layout(layout, 1000)
        pool.destroy_layout(layout)
        assert pool.used_bytes == 0

    def test_capacity_enforced(self):
        pool = OstPool.build(ost_capacity_bytes=100)
        layout = pool.allocate_layout()
        with pytest.raises(LustreError):
            pool.write_layout(layout, 200)

    def test_ost_for_offset(self):
        pool = OstPool.build(num_oss=1, osts_per_oss=2)
        layout = pool.allocate_layout(stripe_count=2, stripe_size=10)
        assert layout.ost_for_offset(0) == layout.objects[0]
        assert layout.ost_for_offset(10) == layout.objects[1]
        assert layout.ost_for_offset(20) == layout.objects[0]

    def test_file_lifecycle_tracks_capacity(self):
        fs = LustreFilesystem(num_oss=2, osts_per_oss=2, default_stripe_count=4)
        fs.create("/f", size=1000)
        assert fs.osts.used_bytes == 1000
        fs.unlink("/f")
        assert fs.osts.used_bytes == 0


# ---------------------------------------------------------------------------
# Property: Lustre namespace agrees with the local MemoryFilesystem
# ---------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z"])
_dirnames = st.sampled_from(["d1", "d2"])
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), _dirnames, _names),
        st.tuples(st.just("unlink"), _dirnames, _names),
        st.tuples(st.just("rename"), _dirnames, _names),
    ),
    max_size=40,
)


class TestCrossFilesystemEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(_ops)
    def test_same_visible_namespace_as_memfs(self, operations):
        from repro.fs.memfs import MemoryFilesystem

        lustre = LustreFilesystem(clock=ManualClock(), num_mds=2,
                                  dne_policy=DnePolicy.HASH)
        local = MemoryFilesystem(clock=ManualClock())
        for fs in (lustre, local):
            fs.mkdir("/d1")
            fs.mkdir("/d2")
        for op, directory, name in operations:
            path = f"/{directory}/{name}"
            alt = f"/{directory}/{name}.moved"
            lustre_error = local_error = None
            if op == "create":
                try:
                    lustre.create(path)
                except Exception as exc:
                    lustre_error = type(exc)
                try:
                    local.create(path)
                except Exception as exc:
                    local_error = type(exc)
            elif op == "unlink":
                try:
                    lustre.unlink(path)
                except Exception as exc:
                    lustre_error = type(exc)
                try:
                    local.unlink(path)
                except Exception as exc:
                    local_error = type(exc)
            else:
                try:
                    lustre.rename(path, alt)
                except Exception as exc:
                    lustre_error = type(exc)
                try:
                    local.rename(path, alt)
                except Exception as exc:
                    local_error = type(exc)
            assert lustre_error == local_error
        for directory in ("/d1", "/d2"):
            assert lustre.listdir(directory) == local.listdir(directory)
