"""Tests for the experiment harness and reporting."""

import pytest

from repro.harness import (
    ascii_chart,
    comparison_table,
    experiment_figure3,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_throughput,
    render_table,
)
from repro.perf import AWS, IOTA


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[:2]}) >= 1
        assert "longer" in lines[3]

    def test_comparison_table_ratio(self):
        text = comparison_table([("metric", 100.0, 50.0)])
        assert "0.500x" in text

    def test_ascii_chart_contains_series_glyphs(self):
        text = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5)
        assert "*" in text
        assert "o" in text
        assert "a" in text and "b" in text

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({"a": []}, title="t")


class TestTable1:
    def test_record_sequence_matches_paper(self):
        lines = experiment_table1()
        assert len(lines) == 3
        assert "01CREAT" in lines[0] and "data1.txt" in lines[0]
        assert "02MKDIR" in lines[1] and "DataDir" in lines[1]
        assert "06UNLNK" in lines[2] and "data1.txt" in lines[2]

    def test_unlink_carries_last_flag(self):
        lines = experiment_table1()
        assert lines[2].split()[4] == "0x1"

    def test_datestamp_matches_table1(self):
        lines = experiment_table1()
        assert all("2017.09.06" in line for line in lines)


class TestTable2:
    @pytest.mark.parametrize("profile", [AWS, IOTA], ids=["AWS", "Iota"])
    def test_rates_within_one_percent_of_paper(self, profile):
        report = experiment_table2(profile, n_files=2000)
        assert report.created_per_s == pytest.approx(
            report.paper["created"], rel=0.01
        )
        assert report.modified_per_s == pytest.approx(
            report.paper["modified"], rel=0.01
        )
        assert report.deleted_per_s == pytest.approx(
            report.paper["deleted"], rel=0.01
        )

    def test_iota_faster_than_aws_everywhere(self):
        aws = experiment_table2(AWS, n_files=500)
        iota = experiment_table2(IOTA, n_files=500)
        assert iota.created_per_s > aws.created_per_s
        assert iota.total_per_s > aws.total_per_s

    def test_render_includes_all_rows(self):
        text = experiment_table2(AWS, n_files=200).render()
        for row in ("Created", "Modified", "Deleted", "Total"):
            assert row in text


class TestThroughputExperiment:
    def test_monitor_rates_match_paper(self):
        for profile, expected in ((AWS, 1053), (IOTA, 8162)):
            report = experiment_throughput(profile, duration=10)
            assert report.measured_monitor_rate == pytest.approx(
                expected, rel=0.05
            )

    def test_render_names_bottleneck(self):
        text = experiment_throughput(IOTA, duration=5).render()
        assert "bottleneck stage: process" in text

    def test_shortfall_close_to_paper(self):
        report = experiment_throughput(IOTA, duration=10)
        assert report.measured_shortfall_percent == pytest.approx(
            report.paper_shortfall_percent, abs=1.0
        )


class TestTable3Experiment:
    def test_all_components_within_tolerance(self):
        report = experiment_table3(duration=30)
        for component, (paper_cpu, paper_mem) in report.paper.items():
            cpu, mem = report.measured[component]
            assert cpu == pytest.approx(paper_cpu, rel=0.15), component
            assert mem == pytest.approx(paper_mem, rel=0.10), component

    def test_render_layout(self):
        text = experiment_table3(duration=5).render()
        assert "Collector" in text
        assert "CPU% (paper)" in text


class TestFigure3Experiment:
    def test_peak_within_factor_two_of_paper(self):
        report = experiment_figure3(base_files=100_000)
        ratio = report.scaled_peak_diffs / report.paper_peak_diffs
        assert 0.5 <= ratio <= 2.0

    def test_scaling_arithmetic_consistent(self):
        report = experiment_figure3(base_files=50_000)
        assert report.analysis.events_per_second_8h == pytest.approx(
            3 * report.analysis.events_per_second_24h
        )
        assert report.analysis.extrapolate() == pytest.approx(
            report.analysis.events_per_second_8h
            * report.analysis.aurora_factor
        )

    def test_series_has_one_diff_per_day_pair(self):
        report = experiment_figure3(days=10, base_files=20_000)
        assert len(report.created) == 9

    def test_render_includes_chart_and_table(self):
        text = experiment_figure3(base_files=50_000).render()
        assert "Figure 3" in text
        assert "Aurora" in text
        assert "created" in text and "modified" in text
