"""Tests for DES stores, resources and random streams."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, RandomStreams, Resource, Store


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5, "late")]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("one")
            times.append(env.now)
            yield store.put("two")  # blocks until consumer frees space
            times.append(env.now)

        def consumer(env):
            yield env.timeout(3)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0, 3]

    def test_counters(self):
        env = Environment()
        store = Store(env)

        def flow(env):
            yield store.put(1)
            yield store.put(2)
            yield store.get()

        env.process(flow(env))
        env.run()
        assert store.total_put == 2
        assert store.total_got == 1
        assert store.peak_level == 2
        assert store.level == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Environment(), capacity=0)


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def worker(env, tag):
            request = resource.request()
            yield request
            log.append((env.now, tag, "start"))
            yield env.timeout(2)
            resource.release(request)
            log.append((env.now, tag, "end"))

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert log == [
            (0, "a", "start"),
            (2, "a", "end"),
            (2, "b", "start"),
            (4, "b", "end"),
        ]

    def test_multiple_slots_run_concurrently(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        ends = []

        def worker(env):
            request = resource.request()
            yield request
            yield env.timeout(3)
            resource.release(request)
            ends.append(env.now)

        for _ in range(2):
            env.process(worker(env))
        env.run()
        assert ends == [3, 3]

    def test_utilisation_accounting(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def worker(env):
            request = resource.request()
            yield request
            yield env.timeout(5)
            resource.release(request)
            yield env.timeout(5)  # idle tail

        env.process(worker(env))
        env.run()
        assert resource.utilisation() == pytest.approx(0.5)
        assert resource.total_served == 1

    def test_queue_length_visible(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        observed = []

        def holder(env):
            request = resource.request()
            yield request
            yield env.timeout(10)
            resource.release(request)

        def waiter(env):
            request = resource.request()
            yield request
            resource.release(request)

        def observer(env):
            yield env.timeout(1)
            observed.append((resource.count, resource.queue_length))

        env.process(holder(env))
        env.process(waiter(env))
        env.process(observer(env))
        env.run()
        assert observed == [(1, 1)]

    def test_release_unheld_request_is_error(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        first = resource.request()

        def bad(env):
            yield env.timeout(1)
            queued = resource.request()  # still queued, not granted
            resource.release(queued)

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(env, tag):
            with resource.request() as request:
                yield request
                order.append(tag)
                yield env.timeout(1)

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert order == ["a", "b"]


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(1).get("x").random()
        b = RandomStreams(1).get("x").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(1)
        before = streams.get("a").random()
        # Drawing from stream b must not change stream a's future draws.
        fresh = RandomStreams(1)
        fresh.get("b").random()
        after = fresh.get("a").random()
        assert before == after

    def test_different_names_differ(self):
        streams = RandomStreams(1)
        assert streams.get("a").random() != streams.get("b").random()

    def test_exponential_mean_roughly_right(self):
        streams = RandomStreams(42)
        draws = [streams.exponential("arr", 2.0) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)

    def test_lognormal_mean_matches_parameter(self):
        streams = RandomStreams(42)
        draws = [streams.lognormal("svc", 0.5) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(0.5, rel=0.1)

    def test_invalid_means_rejected(self):
        streams = RandomStreams(0)
        with pytest.raises(ValueError):
            streams.exponential("x", 0)
        with pytest.raises(ValueError):
            streams.lognormal("x", -1)
