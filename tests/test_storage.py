"""Tests for the pluggable EventStore durability backends.

Covers the storage layer end to end:

* the binary record codec shared with the wire framing: roundtrip of
  full and minimal events, multi-record buffers, torn-data rejection;
* store URL parsing (`memory://` / `segments:///path?...`) and the
  per-shard URL derivation used by the cluster tier;
* the segment log itself: append/recover roundtrip, rotation,
  torn-tail and corrupt-CRC truncation, checkpointing via
  ``mark_snapshotted``, floor-driven compaction;
* the durable EventStore: crash recovery (window, sequence counter,
  lifetime totals, query answers), ``discard_after`` replay trimming
  with last-wins dedup, snapshot+truncate ``save``/``load``;
* the satellite regressions: ``load`` rebuilding the query index
  (``_last_ts`` / monotone fast path) and ``save`` counting its lock
  acquisitions;
* hypothesis properties: memory ≡ segments behavioural equivalence,
  and save/load → query/extend roundtrip on both backends;
* the multiproc bridge over a durable store: a SIGKILL'd child
  recovers its full history from its own log (not just the parent's
  ack-window replay), and the cluster-level SIGKILL-under-load run
  delivers exactly the memory-backend event set.
"""

import os
import shutil
import struct
import tempfile
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterConfig, ClusterMonitor
from repro.core import AggregatorConfig
from repro.core.client import MonitorClient
from repro.core.events import EventType, FileEvent
from repro.core.store import EventStore
from repro.core.storage import (
    MemoryBackend,
    SegmentLogBackend,
    backend_from_url,
    open_store,
    shard_store_url,
)
from repro.lustre import LustreFilesystem
from repro.lustre.mds import DnePolicy
from repro.msgq import make_transport
from repro.msgq.framing import pack_entry, unpack_entry
from repro.util.clock import ManualClock


def make_event(path="/f", event_type=EventType.CREATED, timestamp=1.0):
    return FileEvent(
        event_type=event_type,
        path=path,
        is_dir=False,
        timestamp=timestamp,
        name=path.rsplit("/", 1)[-1],
        source="lustre",
    )


def full_event():
    return FileEvent(
        event_type=EventType.MOVED,
        path="/proj/data/run-42.h5",
        is_dir=False,
        timestamp=1723.5,
        name="run-42.h5",
        source="mds0",
        fid="0x200000401:0x1:0x0",
        parent_fid="0x200000400:0x2:0x0",
        mdt_index=3,
        record_index=9001,
        record_type="RNMTO",
        old_path="/proj/tmp/run-42.h5.part",
        jobid="slurm.1234",
    )


# ---------------------------------------------------------------------------
# Binary record codec (shared layout with the wire framing)
# ---------------------------------------------------------------------------


class TestRecordCodec:
    def test_full_event_roundtrips(self):
        body = pack_entry(7, full_event())
        seq, event, consumed = unpack_entry(body)
        assert seq == 7
        assert consumed == len(body)
        assert event == full_event()

    def test_minimal_event_roundtrips(self):
        minimal = FileEvent(
            event_type=EventType.OTHER, path="", is_dir=True,
            timestamp=0.0, name="", source="",
        )
        seq, event, consumed = unpack_entry(pack_entry(1, minimal))
        assert seq == 1
        assert event == minimal

    def test_multi_record_buffer_advances_offset(self):
        events = [make_event(f"/f{i}", timestamp=float(i)) for i in range(5)]
        blob = b"".join(pack_entry(i + 1, e) for i, e in enumerate(events))
        offset = 0
        decoded = []
        while offset < len(blob):
            seq, event, offset = unpack_entry(blob, offset)
            decoded.append((seq, event))
        assert decoded == list(enumerate(events, start=1))

    def test_torn_buffer_raises(self):
        body = pack_entry(1, full_event())
        with pytest.raises((struct.error, IndexError, ValueError)):
            unpack_entry(body[: len(body) // 2])


# ---------------------------------------------------------------------------
# Store URLs
# ---------------------------------------------------------------------------


class TestStoreUrls:
    def test_memory_url(self):
        backend = backend_from_url("memory://")
        assert isinstance(backend, MemoryBackend)
        assert not backend.durable

    def test_segments_url(self, tmp_path):
        backend = backend_from_url(f"segments://{tmp_path}/log")
        try:
            assert isinstance(backend, SegmentLogBackend)
            assert backend.durable
            assert backend.directory == f"{tmp_path}/log"
        finally:
            backend.close()

    def test_segments_url_parameters(self, tmp_path):
        backend = backend_from_url(
            f"segments://{tmp_path}/log"
            "?segment_bytes=4096&fsync=always&compact_interval=0"
        )
        try:
            assert backend.segment_bytes == 4096
            assert backend.fsync_policy == "always"
            assert backend.compact_interval == 0
        finally:
            backend.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown store URL scheme"):
            backend_from_url("sqlite:///nope.db")

    def test_unknown_parameter_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store URL parameter"):
            backend_from_url(f"segments://{tmp_path}/log?bogus=1")

    def test_segments_url_needs_directory(self):
        with pytest.raises(ValueError, match="needs a directory"):
            backend_from_url("segments://")

    def test_shard_url_memory_passthrough(self):
        assert shard_store_url("memory://", "shard0") == "memory://"

    def test_shard_url_gains_path_component(self):
        assert (
            shard_store_url("segments:///var/log/repro", "shard1")
            == "segments:///var/log/repro/shard1"
        )

    def test_shard_url_preserves_query(self):
        assert (
            shard_store_url("segments:///d?fsync=always", "s0")
            == "segments:///d/s0?fsync=always"
        )

    def test_aggregator_config_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="store_url scheme"):
            AggregatorConfig(store_url="redis://nope")


# ---------------------------------------------------------------------------
# Segment log backend
# ---------------------------------------------------------------------------


def _segment_files(directory):
    return sorted(
        name for name in os.listdir(directory) if name.endswith(".seg")
    )


class TestSegmentBackend:
    def test_append_recover_roundtrip(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory)
        events = [make_event(f"/a/{i}", timestamp=float(i)) for i in range(10)]
        backend.append(1, events[:4])
        backend.append(5, events[4:])
        backend.close()

        recovered = SegmentLogBackend(directory).recover(max_events=100)
        assert recovered is not None
        assert [seq for seq, _ in recovered.entries] == list(range(1, 11))
        assert [e.path for _, e in recovered.entries] == [
            e.path for e in events
        ]
        assert recovered.next_seq == 11
        assert recovered.total_stored == 10
        assert recovered.total_rotated == 0

    def test_recover_empty_directory_returns_none(self, tmp_path):
        backend = SegmentLogBackend(str(tmp_path / "log"))
        assert backend.recover(max_events=10) is None

    def test_recover_caps_window_and_counts_rotated(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory)
        backend.append(1, [make_event(f"/f{i}") for i in range(20)])
        backend.close()
        recovered = SegmentLogBackend(directory).recover(max_events=5)
        assert [seq for seq, _ in recovered.entries] == [16, 17, 18, 19, 20]
        assert recovered.total_stored == 20
        assert recovered.total_rotated == 15

    def test_rotation_at_segment_bytes(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory, segment_bytes=512)
        for batch in range(10):
            backend.append(
                batch * 5 + 1,
                [make_event(f"/r/{batch}/{i}") for i in range(5)],
            )
        stats = backend.stats()
        assert stats["rotations"] >= 1
        assert stats["segments"] >= 2
        backend.close()
        # Rotation never loses records.
        recovered = SegmentLogBackend(directory).recover(max_events=1000)
        assert len(recovered.entries) == 50

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory)
        backend.append(1, [make_event(f"/t/{i}") for i in range(4)])
        backend.close()
        # Tear the last record: chop bytes off the only segment file.
        path = os.path.join(directory, _segment_files(directory)[-1])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)
        fresh = SegmentLogBackend(directory)
        recovered = fresh.recover(max_events=100)
        assert [seq for seq, _ in recovered.entries] == [1, 2, 3]
        assert fresh.torn_records == 1

    def test_corrupt_crc_stops_scan(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory)
        backend.append(1, [make_event(f"/c/{i}") for i in range(3)])
        backend.close()
        path = os.path.join(directory, _segment_files(directory)[-1])
        # Flip one byte inside the second record's body: 16-byte header,
        # then frame+body per record — corrupt somewhere past the first.
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            first_len = struct.unpack_from("<I", data, 16)[0]
            target = 16 + 8 + first_len + 8 + 4  # inside record 2's body
            data[target] ^= 0xFF
            fh.seek(0)
            fh.write(data)
        fresh = SegmentLogBackend(directory)
        recovered = fresh.recover(max_events=100)
        assert [seq for seq, _ in recovered.entries] == [1]
        assert fresh.torn_records == 1

    def test_mark_snapshotted_gcs_covered_segments(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory)
        backend.append(1, [make_event(f"/s/{i}") for i in range(6)])
        backend.mark_snapshotted(last_seq=6, total_stored=6)
        # The covered segment is gone (a fresh header-only active
        # segment may exist).
        assert "00000001.seg" not in _segment_files(directory)
        assert backend.stats()["compacted_segments"] >= 1
        backend.append(7, [make_event("/s/late")])
        backend.close()
        recovered = SegmentLogBackend(directory).recover(max_events=100)
        # The snapshot-covered prefix is gone from the log but still
        # accounted for in the lifetime totals.
        assert [seq for seq, _ in recovered.entries] == [7]
        assert recovered.total_stored == 7
        assert recovered.next_seq == 8

    def test_floor_compaction_gcs_rotated_segments(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(directory, segment_bytes=256)
        seq = 1
        for batch in range(12):
            backend.append(seq, [make_event(f"/fc/{batch}/{i}") for i in range(3)])
            seq += 3
        before = backend.stats()["segments"]
        assert before >= 2
        backend.note_floor(seq - 2)  # everything but the tail is dead
        stats = backend.stats()
        assert stats["compacted_segments"] >= 1
        assert stats["segments"] < before
        backend.close()
        recovered = SegmentLogBackend(directory).recover(max_events=100)
        # Compaction preserves the lifetime count and the live tail.
        assert recovered.total_stored == 36
        assert recovered.entries[-1][0] == 36

    def test_background_compactor_thread(self, tmp_path):
        directory = str(tmp_path / "log")
        backend = SegmentLogBackend(
            directory, segment_bytes=256, compact_interval=0.02
        )
        seq = 1
        for batch in range(12):
            backend.append(seq, [make_event(f"/bg/{batch}/{i}") for i in range(3)])
            seq += 3
        backend.note_floor(seq - 2)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if backend.stats()["compacted_segments"] >= 1:
                break
            backend._compactor_wake.set()
            time.sleep(0.01)
        assert backend.stats()["compacted_segments"] >= 1
        backend.close()

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            SegmentLogBackend(str(tmp_path / "a"), fsync="sometimes")
        with pytest.raises(ValueError, match="segment_bytes"):
            SegmentLogBackend(str(tmp_path / "b"), segment_bytes=4)
        with pytest.raises(ValueError, match="compact_interval"):
            SegmentLogBackend(str(tmp_path / "c"), compact_interval=-1)

    def test_fsync_always_counts_syncs(self, tmp_path):
        backend = SegmentLogBackend(str(tmp_path / "log"), fsync="always")
        backend.append(1, [make_event("/f1")])
        backend.append(2, [make_event("/f2")])
        assert backend.stats()["fsyncs"] >= 2
        backend.close()


# ---------------------------------------------------------------------------
# Durable EventStore
# ---------------------------------------------------------------------------


class TestDurableEventStore:
    def test_crash_recovery_restores_everything(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        store = open_store(url, max_events=100)
        events = [make_event(f"/cr/{i}", timestamp=float(i)) for i in range(25)]
        store.extend(events[:10])
        store.extend(events[10:])
        # Simulated crash: no close(), no fsync beyond policy.
        del store

        recovered = open_store(url, max_events=100)
        assert len(recovered) == 25
        assert recovered.last_seq == 25
        assert recovered.total_stored == 25
        assert recovered.total_rotated == 0
        assert [e.path for _, e in recovered.since(0)] == [
            e.path for e in events
        ]
        # Numbering resumes, not restarts.
        assert recovered.extend([make_event("/cr/next")]) == [26]
        recovered.close()

    def test_recovery_caps_window_counts_rotated(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        store = open_store(url, max_events=10)
        store.extend([make_event(f"/w/{i}") for i in range(30)])
        assert store.total_rotated == 20
        del store
        recovered = open_store(url, max_events=10)
        assert len(recovered) == 10
        assert recovered.total_stored == 30
        assert recovered.total_rotated == 20
        assert recovered.oldest_retained_seq == 21
        recovered.close()

    def test_recovered_store_answers_queries_identically(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        store = open_store(url, max_events=50)
        types = list(EventType)
        events = [
            make_event(f"/q/{i}", types[i % len(types)], timestamp=float(i))
            for i in range(40)
        ]
        store.extend(events)
        expected_since = store.since(5)
        expected_recent = store.recent(7)
        expected_typed = store.query(event_type=EventType.CREATED)
        expected_window = store.query(since_time=10.0, until_time=30.0)
        expected_both = store.query(
            event_type=EventType.DELETED, since_time=3.0, until_time=33.0
        )
        del store
        recovered = open_store(url, max_events=50)
        assert recovered.since(5) == expected_since
        assert recovered.recent(7) == expected_recent
        assert recovered.query(event_type=EventType.CREATED) == expected_typed
        assert (
            recovered.query(since_time=10.0, until_time=30.0)
            == expected_window
        )
        assert (
            recovered.query(
                event_type=EventType.DELETED, since_time=3.0, until_time=33.0
            )
            == expected_both
        )
        recovered.close()

    def test_discard_after_replay_dedups_last_wins(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        store = open_store(url, max_events=100)
        store.extend([make_event(f"/d/{i}", timestamp=float(i)) for i in range(8)])
        # Parent acked through seq 5; trim and replay 6..8 with
        # different payloads (the replayed batch is authoritative).
        assert store.discard_after(5) == 3
        assert store.last_seq == 5
        replayed = [
            make_event(f"/d/replay{i}", timestamp=10.0 + i) for i in range(3)
        ]
        assert store.extend(replayed) == [6, 7, 8]
        del store
        recovered = open_store(url, max_events=100)
        assert len(recovered) == 8
        assert [e.path for _, e in recovered.since(5)] == [
            "/d/replay0", "/d/replay1", "/d/replay2",
        ]
        recovered.close()

    def test_save_truncates_log(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        snapshot = str(tmp_path / "snap.jsonl")
        store = open_store(url, max_events=100)
        store.extend([make_event(f"/sv/{i}") for i in range(10)])
        store.save(snapshot)
        stats = store.backend.stats()
        assert stats["checkpoint_seq"] == 10
        # Appends after the snapshot land in a fresh log tail.
        store.extend([make_event("/sv/after")])
        del store
        recovered = open_store(url, max_events=100)
        # The log alone still reproduces the post-snapshot tail...
        assert recovered.last_seq == 11
        assert [e.path for _, e in recovered.since(10)] == ["/sv/after"]
        # ...while the snapshot-covered prefix needs load().
        assert recovered.total_stored == 11
        recovered.close()

    def test_load_merges_snapshot_with_log_tail(self, tmp_path):
        url = f"segments://{tmp_path}/store"
        snapshot = str(tmp_path / "snap.jsonl")
        store = open_store(url, max_events=100)
        store.extend([make_event(f"/m/{i}", timestamp=float(i)) for i in range(6)])
        store.save(snapshot)
        store.extend(
            [make_event(f"/m/post{i}", timestamp=10.0 + i) for i in range(3)]
        )
        del store  # crash after post-snapshot appends

        restored = EventStore.load(
            snapshot, backend=backend_from_url(url)
        )
        assert restored.last_seq == 9
        assert len(restored) == 9
        assert [e.path for _, e in restored.since(6)] == [
            "/m/post0", "/m/post1", "/m/post2",
        ]
        # The merged window was adopted back into the log: recovery
        # without the snapshot now reproduces the whole store.
        restored.close()
        replayed = open_store(url, max_events=100)
        assert replayed.last_seq == 9
        assert len(replayed) == 9
        replayed.close()

    def test_memory_store_save_load_unchanged(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=10)
        store.extend([make_event(f"/mm/{i}") for i in range(4)])
        store.save(snapshot)
        restored = EventStore.load(snapshot)
        assert restored.since(0) == store.since(0)
        assert isinstance(restored.backend, MemoryBackend)


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class TestLoadIndexRegression:
    """`load` used to leave `_last_ts=-inf`, `_ts_monotone=True` and
    empty buckets with `_index_dirty=False` — restored stores could
    binary-search unindexed data and mis-judge monotonicity."""

    def test_load_recomputes_last_ts(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=100)
        store.extend(
            [make_event(f"/ts/{i}", timestamp=float(i)) for i in range(5)]
        )
        store.save(snapshot)
        restored = EventStore.load(snapshot)
        assert restored._last_ts == 4.0
        assert restored._ts_monotone is True
        assert restored._index_dirty is False
        assert restored._indexed_events == len(restored._events)

    def test_extend_after_load_detects_non_monotone_append(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=100)
        store.extend(
            [make_event(f"/ts/{i}", timestamp=float(i + 10)) for i in range(5)]
        )
        store.save(snapshot)
        restored = EventStore.load(snapshot)
        # Older than every restored timestamp: against the stale
        # `-inf` this looked monotone and the time-window fast path
        # would bisect out-of-order data.
        restored.extend([make_event("/ts/stale", timestamp=1.0)])
        assert restored._ts_monotone is False
        matched = restored.query(since_time=0.0, until_time=5.0)
        assert [e.path for _, e in matched] == ["/ts/stale"]

    def test_time_window_query_right_after_load(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=100)
        store.extend(
            [make_event(f"/w/{i}", timestamp=float(i)) for i in range(20)]
        )
        store.save(snapshot)
        expected = store.query(since_time=5.0, until_time=12.0)
        restored = EventStore.load(snapshot)
        assert restored.query(since_time=5.0, until_time=12.0) == expected

    def test_typed_query_right_after_load(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=100)
        types = list(EventType)
        store.extend(
            [
                make_event(f"/t/{i}", types[i % len(types)], float(i))
                for i in range(30)
            ]
        )
        store.save(snapshot)
        expected = store.query(event_type=EventType.MODIFIED)
        restored = EventStore.load(snapshot)
        assert restored.query(event_type=EventType.MODIFIED) == expected


class TestSaveLockCounter:
    """`save` used to take the store lock without counting it."""

    def test_save_counts_lock_acquisitions(self, tmp_path):
        snapshot = str(tmp_path / "snap.jsonl")
        store = EventStore(max_events=10)
        store.extend([make_event("/lc/a")])
        before = store.lock_acquisitions
        store.save(snapshot)
        assert store.lock_acquisitions > before


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

_TYPES = list(EventType)

_event_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(_TYPES) - 1),  # type
        st.integers(min_value=0, max_value=50),  # timestamp
        st.integers(min_value=0, max_value=9),  # path bucket
    ),
    min_size=0,
    max_size=60,
)


def _build_events(spec):
    return [
        make_event(
            f"/p{bucket}/e{index}", _TYPES[type_index], float(ts)
        )
        for index, (type_index, ts, bucket) in enumerate(spec)
    ]


def _probe(store):
    """A store's observable face: every retrieval surface at once."""
    return {
        "len": len(store),
        "last_seq": store.last_seq,
        "total_stored": store.total_stored,
        "total_rotated": store.total_rotated,
        "since": store.since(2),
        "since_limited": store.since(0, limit=5),
        "recent": store.recent(7),
        "typed": store.query(event_type=EventType.CREATED),
        "window": store.query(since_time=10.0, until_time=35.0),
        "typed_window": store.query(
            event_type=EventType.MODIFIED, since_time=5.0, until_time=40.0
        ),
        "prefix": store.query(path_prefix="/p3"),
    }


class TestEquivalenceProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(spec=_event_specs, max_events=st.integers(min_value=1, max_value=40))
    def test_memory_equals_segments(self, spec, max_events):
        """The pinning property: a segment-backed store is offline
        behaviourally identical to the historical in-memory store."""
        events = _build_events(spec)
        memory = EventStore(max_events=max_events)
        directory = tempfile.mkdtemp(prefix="repro-eqv-")
        try:
            segments = open_store(
                f"segments://{directory}", max_events=max_events
            )
            for start in range(0, len(events), 7):
                batch = events[start:start + 7]
                memory.extend(batch)
                segments.extend(batch)
            assert _probe(memory) == _probe(segments)
            segments.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(spec=_event_specs, max_events=st.integers(min_value=1, max_value=40))
    def test_save_load_roundtrip_memory(self, spec, max_events):
        events = _build_events(spec)
        store = EventStore(max_events=max_events)
        store.extend(events)
        directory = tempfile.mkdtemp(prefix="repro-rt-")
        try:
            snapshot = os.path.join(directory, "snap.jsonl")
            store.save(snapshot)
            restored = EventStore.load(snapshot)
            assert _probe(restored) == _probe(store)
            # The restored store keeps behaving after new appends.
            tail = [make_event("/p0/post", timestamp=100.0)]
            assert restored.extend(tail) == store.extend(tail)
            assert _probe(restored) == _probe(store)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(spec=_event_specs, max_events=st.integers(min_value=1, max_value=40))
    def test_save_load_roundtrip_segments(self, spec, max_events):
        events = _build_events(spec)
        directory = tempfile.mkdtemp(prefix="repro-rts-")
        try:
            url = f"segments://{directory}/log"
            store = open_store(url, max_events=max_events)
            store.extend(events)
            snapshot = os.path.join(directory, "snap.jsonl")
            store.save(snapshot)
            expected = _probe(store)
            store.close()
            restored = EventStore.load(snapshot, backend=backend_from_url(url))
            assert _probe(restored) == expected
            restored.close()
        finally:
            shutil.rmtree(directory, ignore_errors=True)


# ---------------------------------------------------------------------------
# Multiproc bridge + cluster over a durable store
# ---------------------------------------------------------------------------


class TestDurableBridge:
    def test_killed_child_recovers_full_history_from_log(self, tmp_path):
        """With a durable store the respawned child serves its *entire*
        history — the memory backend only gets back the unacked tail
        the parent replays."""
        transport = make_transport("multiproc")
        config = AggregatorConfig(
            shard_label="s0",
            trace_sample_rate=0.0,
            store_url=f"segments://{tmp_path}/s0",
        )
        bridge = transport.process_shard("s0", config)
        try:
            push = transport.push().connect(config.inbound_endpoint)
            push.send([make_event(f"/h/{i}") for i in range(8)])
            assert self._pump(bridge, lambda: bridge.events_stored == 8)

            bridge.kill_child()
            push.send([make_event(f"/h/{i}") for i in range(8, 11)])
            assert self._pump(bridge, lambda: bridge.events_stored == 11)

            client = MonitorClient.for_aggregator(
                transport, bridge, timeout=10.0
            )
            page = client.events_since(0, limit=100)
            # All eleven, exactly once, originals + post-kill tail.
            assert [seq for seq, _ in page] == list(range(1, 12))
            assert [e.path for _, e in page] == [
                f"/h/{i}" for i in range(11)
            ]
        finally:
            transport.close()

    @staticmethod
    def _pump(bridge, predicate, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            bridge.pump_once()
            if predicate() and not bridge.busy:
                return True
            time.sleep(0.002)
        return predicate()


def _run_kill_trace(store_url, namespace):
    """SIGKILL-under-load over the given store backend; returns the
    sorted delivered paths and the observed restart count."""
    fs = LustreFilesystem(
        num_mds=2, mdts_per_mds=2,
        dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
    )
    cluster = ClusterMonitor(
        fs,
        ClusterConfig(
            num_shards=2,
            namespace=namespace,
            transport="multiproc",
            aggregator=AggregatorConfig(
                trace_sample_rate=0.0, store_url=store_url
            ),
        ),
    )
    delivered = []
    try:
        cluster.subscribe(lambda seq, event: delivered.append(event))
        created = []
        for d in range(4):
            fs.makedirs(f"/load{d}")
        for i in range(40):
            path = f"/load{i % 4}/f{i}.dat"
            fs.create(path)
            created.append(path)
            if i == 10:
                cluster.pump()
                cluster.crash_shard("shard0")  # real SIGKILL
            if i == 25:
                cluster.crash_shard("shard1")
        cluster.drain()
        got = sorted(
            event.path for event in delivered
            if event.path and "/f" in event.path
        )
        restarts = sum(
            bridge.metrics.snapshot()["child_restarts"]
            for bridge in cluster.bridges.values()
        )
        return got, sorted(created), restarts
    finally:
        cluster.shutdown()


class TestDurableClusterKill:
    def test_sigkill_under_load_durable_equals_memory(self, tmp_path):
        """The acceptance property: SIGKILL shard processes mid-stream
        over the segment log — the delivery set is loss-free,
        duplicate-free, and identical to the memory-backend run."""
        durable_got, created, restarts = _run_kill_trace(
            f"segments://{tmp_path}/cluster", "kill-seg"
        )
        assert durable_got == created  # nothing lost
        assert len(durable_got) == len(set(durable_got))  # nothing duped
        assert restarts >= 1  # the faults actually happened

        memory_got, memory_created, _ = _run_kill_trace(
            "memory://", "kill-mem"
        )
        assert memory_got == memory_created
        assert durable_got == memory_got  # backend-independent delivery

        # The durable run left per-shard logs behind: each shard
        # recovered (or can recover) its own history from its own dir.
        shard_dirs = sorted(os.listdir(tmp_path / "cluster"))
        assert shard_dirs == ["shard0", "shard1"]
        for shard in shard_dirs:
            recovered = open_store(
                f"segments://{tmp_path}/cluster/{shard}", max_events=1000
            )
            assert len(recovered) > 0
            recovered.close()
