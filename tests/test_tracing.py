"""Tests for end-to-end stage tracing, histograms, and exposition.

Covers the observability layer: thread-safe LatencyHistogram, the
registry Histogram kind, the Prometheus renderer, the PipelineTracer
sampling/stamping machinery, the batch wire-format stamps, and the
stage histograms produced by a full monitor run (including the
``{'op': 'metrics'}`` API answer and structured log correlation).
"""

import threading

import pytest

from repro.core import (
    AggregatorConfig,
    LustreMonitor,
    MonitorClient,
    MonitorConfig,
    ReportBatch,
    facility_relay,
    iter_report,
)
from repro.core.events import EventType, FileEvent
from repro.lustre import LustreFilesystem
from repro.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    NULL_TRACER,
    PIPELINE_STAGES,
    PipelineTracer,
    make_tracer,
)
from repro.ripple.actions import ActionRequest
from repro.ripple.agent import RippleAgent
from repro.util.clock import ManualClock
from repro.util.logging import CaptureHandler


def make_event(index=0, timestamp=0.0):
    return FileEvent(
        event_type=EventType.CREATED, path=f"/d/f{index}", is_dir=False,
        timestamp=timestamp, name=f"f{index}", source="lustre",
    )


def build_monitor(num_mds=1, **agg_kwargs):
    clock = ManualClock()
    fs = LustreFilesystem(num_mds=num_mds, clock=clock)
    fs.makedirs("/proj/data")
    monitor = LustreMonitor(
        fs, MonitorConfig(aggregator=AggregatorConfig(**agg_kwargs))
    )
    return fs, clock, monitor


# ---------------------------------------------------------------------------
# Satellite: LatencyHistogram thread-safety
# ---------------------------------------------------------------------------


class TestLatencyHistogramConcurrency:
    def test_concurrent_records_lose_nothing(self):
        histogram = LatencyHistogram()
        threads = 8
        per_thread = 500

        def hammer(value):
            for _ in range(per_thread):
                histogram.record(value)

        workers = [
            threading.Thread(target=hammer, args=(0.001 * (i + 1),))
            for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert histogram.total == threads * per_thread
        assert sum(histogram.counts()) == threads * per_thread
        expected_sum = sum(
            0.001 * (i + 1) * per_thread for i in range(threads)
        )
        assert histogram.sum == pytest.approx(expected_sum)
        assert histogram.lock_acquisitions == threads * per_thread

    def test_weighted_record_is_one_lock(self):
        histogram = LatencyHistogram()
        histogram.record(0.005, count=64)
        assert histogram.total == 64
        assert histogram.sum == pytest.approx(0.005 * 64)
        assert histogram.lock_acquisitions == 1

    def test_weighted_record_validates(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(0.1, count=0)
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.1)

    def test_summary_shape(self):
        histogram = LatencyHistogram()
        for index in range(1, 101):
            histogram.record(index / 1000.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99"}
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["max"] == pytest.approx(0.1)

    def test_empty_summary(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


# ---------------------------------------------------------------------------
# Tentpole part 1: the registry Histogram kind
# ---------------------------------------------------------------------------


class TestRegistryHistogram:
    def test_get_or_create_returns_canonical(self):
        registry = MetricsRegistry()
        a = registry.histogram("pipeline.collect")
        b = registry.histogram("pipeline.collect")
        assert a is b
        assert "pipeline.collect" in registry.names()

    def test_snapshot_flattens_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stage.latency")
        for index in range(1, 11):
            histogram.record(index / 100.0)
        snapshot = registry.snapshot()
        for stat in ("count", "mean", "max", "p50", "p95", "p99"):
            assert f"stage.latency.{stat}" in snapshot
        assert snapshot["stage.latency.count"] == 10

    def test_snapshot_prefix_strips_scope(self):
        registry = MetricsRegistry()
        registry.histogram("consumer.c1.latency").record(0.01)
        registry.histogram("other.latency").record(0.5)
        scoped = registry.snapshot("consumer.c1")
        assert scoped["latency.count"] == 1
        assert "other.latency.count" not in scoped

    def test_scoped_registry_histogram(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("consumer.c1")
        scoped.histogram("latency").record(0.01)
        assert registry.histogram("consumer.c1.latency").total == 1

    def test_concurrent_registration_and_snapshot(self):
        registry = MetricsRegistry()
        errors = []

        def register(worker):
            try:
                for index in range(100):
                    registry.histogram(f"h{index % 10}").record(0.001)
                    registry.counter(f"c{worker}").inc()
                    registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=register, args=(i,)) for i in range(6)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        snapshot = registry.snapshot()
        total = sum(
            snapshot[f"h{i}.count"] for i in range(10)
        )
        assert total == 600


# ---------------------------------------------------------------------------
# Tentpole part 3: Prometheus exposition
# ---------------------------------------------------------------------------


class TestRenderPrometheus:
    def test_counter_gets_total_suffix_and_sanitized_name(self):
        registry = MetricsRegistry()
        registry.counter("aggregator.agg#2.events_stored").inc(7)
        text = registry.render_prometheus()
        assert "# TYPE repro_aggregator_agg_2_events_stored_total counter" in text
        assert "repro_aggregator_agg_2_events_stored_total 7" in text

    def test_gauges_render(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(3)
        registry.gauge_fn("store.len", lambda: 42)
        text = registry.render_prometheus()
        assert "repro_queue_depth 3" in text
        assert "repro_store_len 42" in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("pipeline.publish")
        histogram.record(0.001)
        histogram.record(0.002)
        histogram.record(10.0)
        lines = registry.render_prometheus().splitlines()
        bucket_lines = [
            line for line in lines
            if line.startswith("repro_pipeline_publish_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative => monotone
        assert counts[-1] == 3
        assert 'le="+Inf"' in bucket_lines[-1]
        assert any(
            line.startswith("repro_pipeline_publish_count 3")
            for line in lines
        )
        assert any(
            line.startswith("repro_pipeline_publish_sum")
            for line in lines
        )

    def test_digit_prefix_and_namespace_off(self):
        registry = MetricsRegistry()
        registry.counter("0weird").inc()
        text = registry.render_prometheus(namespace="")
        assert "_0weird_total 1" in text


# ---------------------------------------------------------------------------
# Tentpole part 2: the tracer and batch stamps
# ---------------------------------------------------------------------------


class TestPipelineTracer:
    def test_rate_one_samples_everything(self):
        tracer = PipelineTracer(MetricsRegistry(), 1.0)
        assert all(tracer.sample() for _ in range(10))

    def test_rate_half_samples_every_other(self):
        tracer = PipelineTracer(MetricsRegistry(), 0.5)
        decisions = [tracer.sample() for _ in range(10)]
        assert decisions == [True, False] * 5

    def test_rate_zero_is_null_tracer(self):
        assert make_tracer(MetricsRegistry(), 0.0) is NULL_TRACER
        assert make_tracer(None) is NULL_TRACER

    def test_null_tracer_registers_nothing(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry, 0.0)
        assert not tracer.enabled
        assert not tracer.sample()
        tracer.record("collect", 1.0)
        assert registry.histograms() == {}
        assert tracer.stage_summaries() == {}

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            make_tracer(MetricsRegistry(), 1.5)
        with pytest.raises(ValueError):
            make_tracer(MetricsRegistry(), -0.1)
        with pytest.raises(ValueError):
            PipelineTracer(MetricsRegistry(), 0.0)

    def test_record_clamps_negative_deltas(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry, 1.0)
        tracer.record("deliver", -5.0)
        summary = tracer.stage_summaries()["deliver"]
        assert summary["count"] == 1
        assert summary["max"] == 0.0

    def test_scoped_registry_unwrapped(self):
        registry = MetricsRegistry()
        tracer = PipelineTracer(registry.scoped("aggregator.a"), 1.0)
        tracer.record("publish", 0.01)
        assert registry.histogram("pipeline.publish").total == 1

    def test_tracer_clock_injection(self):
        clock = ManualClock()
        clock.advance(41.5)
        tracer = PipelineTracer(MetricsRegistry(), 1.0, clock=clock)
        assert tracer.now() == pytest.approx(41.5)

    def test_stage_names_cover_pipeline(self):
        assert PIPELINE_STAGES == (
            "collect", "aggregate", "publish", "deliver", "relay", "action",
        )


class TestBatchStamps:
    def test_report_batch_is_sequence_like(self):
        events = [make_event(i) for i in range(3)]
        batch = ReportBatch(tuple(events), collected_ts=1.5)
        assert len(batch) == 3
        assert list(batch) == events
        assert batch[0] is events[0]

    def test_iter_report_unwraps_stamped_batch(self):
        events = [make_event(i) for i in range(2)]
        unpacked, ts = iter_report(ReportBatch(tuple(events), 2.0))
        assert unpacked == events
        assert ts == 2.0

    def test_iter_report_plain_list_passthrough(self):
        events = [make_event()]
        unpacked, ts = iter_report(events)
        assert unpacked is events
        assert ts is None


# ---------------------------------------------------------------------------
# End-to-end: stage histograms from a monitor run
# ---------------------------------------------------------------------------


class TestEndToEndStages:
    def test_four_stages_recorded(self):
        fs, clock, monitor = build_monitor()
        monitor.subscribe(lambda seq, ev: None)
        for index in range(20):
            fs.create(f"/proj/data/f{index}")
        clock.advance(2.0)  # collection happens 2s after the events
        monitor.drain()
        stage_latency = monitor.stats().stage_latency
        for stage in ("collect", "aggregate", "publish", "deliver"):
            assert stage in stage_latency, stage
            assert stage_latency[stage]["count"] > 0
        # The fs clock drives the tracer, so the collect stage measures
        # exactly the virtual delay between mutation and collection.
        assert stage_latency["collect"]["mean"] == pytest.approx(2.0)
        # Later stages happen within one drain (no clock advance).
        assert stage_latency["deliver"]["max"] == 0.0

    def test_metrics_api_answer(self):
        fs, clock, monitor = build_monitor()
        monitor.subscribe(lambda seq, ev: None)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        client = MonitorClient.for_monitor(monitor)
        answer = client.metrics()
        for stage in ("collect", "aggregate", "publish", "deliver"):
            summary = answer["histograms"][f"pipeline.{stage}"]
            assert {"p50", "p95", "p99"} <= set(summary)
            assert summary["count"] > 0
        assert "# TYPE repro_pipeline_collect histogram" in answer["prometheus"]
        assert "repro_pipeline_collect_bucket" in answer["prometheus"]
        client.close()

    def test_sample_rate_zero_registers_no_stage_histograms(self):
        fs, clock, monitor = build_monitor(trace_sample_rate=0.0)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(seq))
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        assert len(seen) == 10  # pipeline itself unaffected
        assert monitor.tracer is NULL_TRACER
        assert monitor.stats().stage_latency == {}
        assert not any(
            name.startswith("pipeline.")
            for name in monitor.registry.histograms()
        )

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            AggregatorConfig(trace_sample_rate=1.5)

    def test_relay_stage_recorded(self):
        fs, clock, monitor = build_monitor()
        relay = facility_relay([monitor], names=["site"])
        for index in range(5):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        relay.pump_once()
        registry = relay.metrics.registry
        assert registry.histogram("pipeline.relay").total > 0
        # The origin collection stamp survives the hop: the relay also
        # records its own aggregate stage against collected_ts.
        assert registry.histogram("pipeline.aggregate").total > 0
        relay.close()

    def test_action_stage_recorded(self):
        agent = RippleAgent("a1")
        agent.enqueue_action(
            ActionRequest(
                action_type="command",
                agent_id="a1",
                parameters={"command": "mkdir", "src": "/out"},
                event=make_event(),
                rule_id=1,
            )
        )
        results = agent.execute_pending()
        assert results[0].success
        assert agent.tracer.stage_summaries()["action"]["count"] == 1

    def test_action_stage_skipped_when_disabled(self):
        agent = RippleAgent("a2", trace_sample_rate=0.0)
        request = ActionRequest(
            action_type="command",
            agent_id="a2",
            parameters={"command": "mkdir", "src": "/out"},
            event=make_event(),
            rule_id=1,
        )
        agent.enqueue_action(request)
        assert request.created_ts is None
        agent.execute_pending()
        assert agent.tracer.stage_summaries() == {}


# ---------------------------------------------------------------------------
# Satellite: consumer latency migrated onto the registry
# ---------------------------------------------------------------------------


class TestConsumerLatencyMigration:
    def test_latency_is_registry_backed(self):
        fs, clock, monitor = build_monitor()
        consumer = monitor.subscribe(lambda seq, ev: None, name="lat")
        consumer.track_latency(clock=clock)
        clock.advance(1.0)  # nonzero event timestamp (0 disables tracking)
        fs.create("/proj/data/f")
        clock.advance(0.5)
        monitor.drain()
        assert consumer.latency.total == 1
        assert consumer.latency.mean == pytest.approx(0.5)
        # The same numbers surface through the shared registry snapshot.
        snapshot = monitor.registry.snapshot("consumer.lat")
        assert snapshot["latency.count"] == 1
        assert snapshot["latency.mean"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Tentpole part 3: structured log correlation
# ---------------------------------------------------------------------------


class TestLogCorrelation:
    def test_batch_records_carry_sequence_ranges(self):
        capture = CaptureHandler().attach()
        try:
            fs, clock, monitor = build_monitor()
            monitor.subscribe(lambda seq, ev: None)
            for index in range(8):
                fs.create(f"/proj/data/f{index}")
            monitor.drain()
        finally:
            capture.detach()
        correlated = [
            record for record in capture.records
            if hasattr(record, "first_seq") and hasattr(record, "last_seq")
        ]
        origins = {record.name.rsplit(".", 2)[-2] for record in correlated}
        assert {"collector", "aggregator", "consumer"} <= origins
        for record in correlated:
            assert record.first_seq <= record.last_seq
            assert record.batch_events >= 1
        # The aggregator's store sequences cover every event exactly.
        agg = [
            record for record in correlated
            if ".aggregator." in record.name
        ]
        assert max(record.last_seq for record in agg) == 8
