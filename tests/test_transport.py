"""Tests for the pluggable transport layer.

Covers the transport refactor end to end:

* the factory: URL scheme → backend, unknown schemes rejected;
* the equivalence property: InprocTransport (the Context under its
  contract name) delivers exactly the same message sequences the
  pre-refactor msgq did — driven with hypothesis over randomized
  put/get interleavings;
* credit-based flow control: credits = hwm - depth, observable on
  every socket, and `send_many` progressing in credit-sized waves;
* shed-priority semantics: under HWM pressure sheddable payloads are
  dropped highest-priority-first and counted, must-deliver payloads
  never;
* the RepSocket hwm satellite: constructor parameter plumbed from
  AggregatorConfig instead of hardcoded;
* REQ/REP timeout and socket-closed paths, and Context teardown
  closing the whole socket population idempotently;
* per-socket occupancy gauges in the metrics registry;
* the adaptive flush controller: grow under pressure, shrink when
  relaxed with high publish latency, clamped both ways;
* the multiproc backend: bridge roundtrip + historic API, cluster
  equivalence against inproc on an identical trace, and the
  shard-kill-under-load zero-loss property.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterConfig, ClusterMonitor
from repro.core import Aggregator, AggregatorConfig
from repro.core.client import MonitorClient
from repro.core.events import EventType, FileEvent, iter_entries
from repro.errors import MessagingError, SocketClosed, WouldBlock
from repro.lustre import LustreFilesystem
from repro.lustre.mds import DnePolicy
from repro.metrics import AdaptiveFlushController, FlushTuning, MetricsRegistry
from repro.msgq import Context, InprocTransport, Transport, make_transport
from repro.msgq.framing import (
    decode_entries,
    decode_report,
    encode_entries,
    encode_report,
)
from repro.msgq.multiproc import MultiprocTransport
from repro.util.clock import ManualClock


def make_event(path, event_type=EventType.CREATED, timestamp=1.0):
    return FileEvent(
        event_type=event_type,
        path=path,
        is_dir=False,
        timestamp=timestamp,
        name=path.rsplit("/", 1)[-1],
        source="lustre",
    )


def pump_until(bridge, predicate, timeout=15.0, extra=()):
    """Drive a bridge (and optional extra pumps) until *predicate*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        bridge.pump_once()
        for step in extra:
            step()
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


class TestTransportFactory:
    def test_default_is_inproc(self):
        transport = make_transport()
        assert isinstance(transport, Context)
        assert transport.scheme == "inproc"

    def test_inproc_alias_is_context(self):
        assert InprocTransport is Context
        assert isinstance(Context(), Transport)

    def test_url_scheme_prefix_parses(self):
        assert make_transport("inproc://whatever").scheme == "inproc"

    def test_multiproc_scheme(self):
        transport = make_transport("multiproc")
        try:
            assert isinstance(transport, MultiprocTransport)
            assert transport.scheme == "multiproc"
            # It is also a full inproc context (parent-side sockets).
            assert isinstance(transport, Context)
        finally:
            transport.close()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(MessagingError, match="unknown transport"):
            make_transport("tcp://10.0.0.1:5555")


# ---------------------------------------------------------------------------
# Equivalence: the refactored fabric delivers exactly what the old one did
# ---------------------------------------------------------------------------


class TestInprocEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(st.integers(), max_size=40),
        hwm=st.integers(min_value=1, max_value=8),
        drain=st.integers(min_value=1, max_value=9),
    )
    def test_push_pull_delivers_everything_in_order(self, items, hwm, drain):
        """Interleaved credit-limited puts + partial drains lose nothing.

        This is the delivery oracle for the credit rework: whatever
        wave pattern `put_many` chooses, the receiver observes exactly
        the sent sequence — same items, same order, no duplicates —
        just as the pre-refactor fabric guaranteed.
        """
        transport = make_transport("inproc")
        pull = transport.pull(hwm=hwm).bind("inproc://sink")
        push = transport.push(hwm=hwm).connect("inproc://sink")
        received = []
        cursor = 0
        while cursor < len(items) or pull.pending:
            if cursor < len(items):
                chunk = items[cursor:cursor + hwm]  # fits the mark
                try:
                    push.send_many(list(chunk), timeout=0)
                    cursor += len(chunk)
                except WouldBlock:
                    pass  # no credits this round; drain below frees some
            try:
                received.extend(pull.recv_many(max_messages=drain, block=False))
            except WouldBlock:
                pass
        assert received == items
        assert push.sent == len(items)

    @settings(max_examples=30, deadline=None)
    @given(hwm=st.integers(min_value=1, max_value=6),
           total=st.integers(min_value=7, max_value=40))
    def test_oversized_group_progresses_in_credit_waves(self, hwm, total):
        """A group larger than hwm admits exactly the credits granted."""
        transport = make_transport("inproc")
        pull = transport.pull(hwm=hwm).bind("inproc://sink")
        push = transport.push(hwm=hwm).connect("inproc://sink")
        items = list(range(total))
        with pytest.raises(WouldBlock, match=f"{hwm}/{total}"):
            push.send_many(items, timeout=0.01)
        assert pull.pending == hwm
        assert pull.credits == 0
        # Draining grants credits back, and the retry tail continues.
        drained = pull.recv_many(block=False)
        assert drained == items[:hwm]
        assert pull.credits == hwm


class TestCredits:
    def test_credits_are_free_capacity(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=5).bind("inproc://sink")
        push = transport.push(hwm=5).connect("inproc://sink")
        assert pull.credits == 5
        push.send_many([1, 2, 3])
        assert pull.credits == 2
        pull.recv_many(block=False)
        assert pull.credits == 5

    def test_requeue_overshoot_floors_credits_at_zero(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=2).bind("inproc://sink")
        push = transport.push(hwm=2).connect("inproc://sink")
        push.send_many([1, 2])
        taken = pull.recv_many(block=False)
        pull.requeue(taken + [3])  # bypasses the mark by design
        assert pull.pending == 3
        assert pull.credits == 0

    def test_sub_and_rep_expose_occupancy(self):
        transport = make_transport("inproc")
        pub = transport.pub().bind("inproc://events")
        sub = transport.sub(hwm=4).connect("inproc://events").subscribe("")
        assert (sub.hwm, sub.credits) == (4, 4)
        pub.send("t", "x")
        assert (sub.pending, sub.credits) == (1, 3)
        rep = transport.rep(hwm=3).bind("inproc://api")
        assert (rep.hwm, rep.credits, rep.pending) == (3, 3, 0)


# ---------------------------------------------------------------------------
# Shed-priority load shedding
# ---------------------------------------------------------------------------


class TestShedPriority:
    def test_sheddable_dropped_instead_of_blocking(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=2).bind("inproc://sink")
        push = transport.push(hwm=2).connect("inproc://sink")
        # 4 payloads into a 2-slot sink: the two sheddable ones go.
        payloads = [("must", 0), ("shed-low", 1), ("must", 0), ("shed-hi", 2)]
        push.send_many(payloads, timeout=0.05, shed_priority=lambda p: p[1])
        assert [p[0] for p in pull.recv_many(block=False)] == ["must", "must"]
        assert push.shed == 2
        assert pull.shed == 2
        assert push.sent == 2

    def test_highest_priority_sheds_first(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=3).bind("inproc://sink")
        push = transport.push(hwm=3).connect("inproc://sink")
        payloads = [("a", 1), ("b", 3), ("c", 2), ("d", 0)]
        # Credits cover 3 of 4: exactly one must shed — the priority-3.
        push.send_many(payloads, timeout=0.05, shed_priority=lambda p: p[1])
        kept = [p[0] for p in pull.recv_many(block=False)]
        assert kept == ["a", "c", "d"]
        assert push.shed == 1

    def test_must_deliver_still_raises_on_timeout(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=1).bind("inproc://sink")
        push = transport.push(hwm=1).connect("inproc://sink")
        push.send(("occupy", 0))
        with pytest.raises(WouldBlock):
            push.send_many(
                [("must", 0), ("must", 0)],
                timeout=0.01,
                shed_priority=lambda p: p[1],
            )
        assert push.shed == 0

    def test_all_sheddable_never_raises(self):
        transport = make_transport("inproc")
        pull = transport.pull(hwm=1).bind("inproc://sink")
        push = transport.push(hwm=1).connect("inproc://sink")
        push.send(("occupy", 0))
        push.send_many(
            [("shed", 1), ("shed", 1)],
            timeout=0.01,
            shed_priority=lambda p: p[1],
        )
        assert push.shed == 2
        assert pull.pending == 1  # only the occupier

    def test_within_hwm_group_survives_transient_shortfall(self):
        # A group that fits the mark must NOT shed on an instantaneous
        # credit shortfall: it blocks like the non-shedding path, and a
        # drain before the deadline delivers everything.
        import threading

        transport = make_transport("inproc")
        pull = transport.pull(hwm=2).bind("inproc://sink")
        push = transport.push(hwm=2).connect("inproc://sink")
        push.send(("occupy", 0))
        push.send(("occupy", 0))

        def drain_soon():
            time.sleep(0.05)
            pull.recv_many(block=False)

        drainer = threading.Thread(target=drain_soon)
        drainer.start()
        try:
            push.send_many(
                [("must", 0), ("shed", 5)],
                timeout=2.0,
                shed_priority=lambda p: p[1],
            )
        finally:
            drainer.join()
        assert push.shed == 0
        assert [p[0] for p in pull.recv_many(block=False)] == [
            "must",
            "shed",
        ]

    def test_within_hwm_deadline_shed_then_admits_must_deliver(self):
        # At deadline expiry the sheddable item is dropped, and the
        # surviving must-deliver is admitted into the credits the shed
        # just freed instead of failing the call.
        transport = make_transport("inproc")
        pull = transport.pull(hwm=4).bind("inproc://sink")
        push = transport.push(hwm=4).connect("inproc://sink")
        for _ in range(3):
            push.send(("occupy", 0))
        push.send_many(
            [("must", 0), ("shed", 5)],
            timeout=0.05,
            shed_priority=lambda p: p[1],
        )
        assert push.shed == 1
        kept = [p[0] for p in pull.recv_many(block=False)]
        assert kept == ["occupy", "occupy", "occupy", "must"]


# ---------------------------------------------------------------------------
# RepSocket hwm satellite + REQ/REP edge paths + Context teardown
# ---------------------------------------------------------------------------


class TestRepSocketHwm:
    def test_hwm_is_a_constructor_parameter(self):
        transport = make_transport("inproc")
        rep = transport.rep(hwm=2).bind("inproc://api")
        assert rep.hwm == 2

    def test_aggregator_plumbs_config_hwm_to_api_socket(self):
        transport = make_transport("inproc")
        config = AggregatorConfig(hwm=123)
        aggregator = Aggregator(transport, config)
        assert aggregator.api.hwm == 123

    def test_full_request_queue_times_out_instead_of_hanging(self):
        transport = make_transport("inproc")
        transport.rep(hwm=1).bind("inproc://api")
        req = transport.req().connect("inproc://api")
        started = time.monotonic()
        with pytest.raises(WouldBlock):
            req.request("one", timeout=0.05)  # nobody serving
        # The wait was bounded by the timeout, not the reply.
        assert time.monotonic() - started < 2.0


class TestReqRepClosedPaths:
    def test_request_to_closed_server_raises_socket_closed(self):
        transport = make_transport("inproc")
        rep = transport.rep().bind("inproc://api")
        req = transport.req().connect("inproc://api")
        rep.close()
        with pytest.raises(SocketClosed):
            req.request("hello", timeout=0.1)

    def test_recv_on_closed_rep_raises(self):
        transport = make_transport("inproc")
        rep = transport.rep().bind("inproc://api")
        rep.close()
        with pytest.raises(SocketClosed):
            rep.recv(timeout=0)

    def test_request_on_closed_req_raises(self):
        transport = make_transport("inproc")
        transport.rep().bind("inproc://api")
        req = transport.req().connect("inproc://api")
        req.close()
        with pytest.raises(SocketClosed):
            req.request("hello")

    def test_request_timeout_without_server_thread(self):
        transport = make_transport("inproc")
        transport.rep().bind("inproc://api")
        req = transport.req(timeout=0.02).connect("inproc://api")
        with pytest.raises(WouldBlock):
            req.request("hello")  # default timeout from constructor


class TestContextTeardown:
    def test_close_closes_every_registered_socket(self):
        transport = make_transport("inproc")
        pub = transport.pub().bind("inproc://events")
        pull = transport.pull().bind("inproc://sink")
        rep = transport.rep().bind("inproc://api")
        # Unbound / connect-only sockets are part of the population too.
        sub = transport.sub().connect("inproc://events")
        push = transport.push().connect("inproc://sink")
        req = transport.req().connect("inproc://api")
        transport.close()
        for socket in (pub, pull, rep, sub, push, req):
            assert socket.closed
        assert transport.endpoints() == []

    def test_close_is_idempotent(self):
        transport = make_transport("inproc")
        socket = transport.pub().bind("inproc://events")
        transport.close()
        transport.close()  # second close finds nothing left to do
        socket.close()  # and a socket's own close stays a no-op
        assert transport.closed

    def test_factories_refuse_after_close(self):
        transport = make_transport("inproc")
        transport.close()
        for factory in (
            transport.pub, transport.sub, transport.push,
            transport.pull, transport.req, transport.rep,
        ):
            with pytest.raises(MessagingError, match="closed"):
                factory()


# ---------------------------------------------------------------------------
# Occupancy gauges
# ---------------------------------------------------------------------------


class TestOccupancyGauges:
    def test_aggregator_exports_inbound_occupancy(self):
        transport = make_transport("inproc")
        registry = MetricsRegistry()
        aggregator = Aggregator(
            transport, AggregatorConfig(hwm=10), registry=registry
        )
        push = transport.push(hwm=10).connect(
            aggregator.config.inbound_endpoint
        )
        push.send([make_event("/a")])
        snap = aggregator.metrics.snapshot()
        assert snap["inbound_depth"] == 1
        assert snap["inbound_hwm"] == 10
        assert snap["inbound_credits"] == 9
        aggregator.pump_once()
        snap = aggregator.metrics.snapshot()
        assert (snap["inbound_depth"], snap["inbound_credits"]) == (0, 10)

    def test_consumer_exports_subscription_occupancy(self):
        transport = make_transport("inproc")
        registry = MetricsRegistry()
        aggregator = Aggregator(transport, AggregatorConfig(), registry=registry)
        from repro.core import Consumer

        consumer = Consumer(
            transport, lambda seq, event: None, registry=registry
        )
        push = transport.push().connect(aggregator.config.inbound_endpoint)
        push.send([make_event("/a")])
        aggregator.pump_once()
        snap = consumer.metrics.snapshot()
        assert snap["sub_depth"] == 1
        assert snap["sub_credits"] == snap["sub_hwm"] - 1


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_report_roundtrip_list(self):
        events = [make_event(f"/d/{i}") for i in range(5)]
        decoded = decode_report(encode_report(events))
        assert decoded == events

    def test_report_roundtrip_traced(self):
        from repro.core.events import ReportBatch

        batch = ReportBatch(tuple(make_event(f"/d/{i}") for i in range(3)), 7.5)
        decoded = decode_report(encode_report(batch))
        assert isinstance(decoded, ReportBatch)
        assert decoded.collected_ts == 7.5
        assert list(decoded.events) == list(batch.events)

    def test_entries_roundtrip_preserves_stamps_and_shard(self):
        from repro.core.events import EventBatch

        batch = EventBatch(
            tuple((i, make_event(f"/d/{i}")) for i in range(4)),
            collected_ts=1.0, aggregated_ts=2.0, published_ts=3.0,
            shard="shard1",
        )
        decoded = decode_entries(encode_entries(batch))
        assert decoded == batch

    def test_non_event_payload_falls_back_to_pickle(self):
        payload = {"not": "events"}
        assert decode_report(encode_report(payload)) == payload


# ---------------------------------------------------------------------------
# Adaptive flush controller
# ---------------------------------------------------------------------------


class _FakeShard:
    def __init__(self, depth, hwm, batch_events=256):
        self.depth = depth
        self.hwm = hwm
        self.flush_batch_events = batch_events

    def occupancy(self):
        return (self.depth, self.hwm)


class TestAdaptiveFlushController:
    def test_grows_under_pressure(self):
        registry = MetricsRegistry()
        shard = _FakeShard(depth=80, hwm=100, batch_events=256)
        controller = AdaptiveFlushController(
            registry, {"s0": shard}, tuning=FlushTuning()
        )
        assert controller.tick() == 1
        assert shard.flush_batch_events == 512

    def test_growth_clamped_at_max(self):
        registry = MetricsRegistry()
        tuning = FlushTuning(max_batch_events=600)
        shard = _FakeShard(depth=80, hwm=100, batch_events=512)
        controller = AdaptiveFlushController(registry, {"s0": shard}, tuning)
        controller.tick()
        assert shard.flush_batch_events == 600

    def test_shrinks_when_relaxed_and_publish_slow(self):
        registry = MetricsRegistry()
        registry.histogram("pipeline.publish").record(0.2, count=100)
        shard = _FakeShard(depth=0, hwm=100, batch_events=1024)
        controller = AdaptiveFlushController(
            registry, {"s0": shard}, tuning=FlushTuning()
        )
        assert controller.tick() == 1
        assert shard.flush_batch_events == 512

    def test_no_shrink_when_publish_fast(self):
        registry = MetricsRegistry()
        registry.histogram("pipeline.publish").record(0.001, count=100)
        shard = _FakeShard(depth=0, hwm=100, batch_events=1024)
        controller = AdaptiveFlushController(
            registry, {"s0": shard}, tuning=FlushTuning()
        )
        assert controller.tick() == 0
        assert shard.flush_batch_events == 1024

    def test_unbounded_ceiling_treated_as_max(self):
        registry = MetricsRegistry()
        registry.histogram("pipeline.publish").record(0.2, count=100)
        tuning = FlushTuning(max_batch_events=1000)
        shard = _FakeShard(depth=0, hwm=100, batch_events=0)
        controller = AdaptiveFlushController(registry, {"s0": shard}, tuning)
        controller.tick()
        assert shard.flush_batch_events == 500

    def test_tunes_aggregator_pump_interval(self):
        registry = MetricsRegistry()
        transport = make_transport("inproc")
        aggregator = Aggregator(
            transport, AggregatorConfig(hwm=4, batch_events=128),
            registry=registry,
        )
        push = transport.push(hwm=4).connect(
            aggregator.config.inbound_endpoint
        )
        for _ in range(3):
            push.send([make_event("/a")])
        tuning = FlushTuning()
        controller = AdaptiveFlushController(
            registry, {"agg": aggregator}, tuning=tuning
        )
        controller.tick()
        assert aggregator.flush_batch_events == 256
        assert aggregator.flush_interval == tuning.pressured_interval

    def test_invalid_tuning_rejected(self):
        with pytest.raises(ValueError):
            FlushTuning(min_batch_events=0)
        with pytest.raises(ValueError):
            FlushTuning(relax_ratio=0.9, pressure_ratio=0.5)
        with pytest.raises(ValueError):
            FlushTuning(grow_factor=1.0)

    def test_cluster_autotune_wiring(self):
        fs = LustreFilesystem(
            num_mds=1, mdts_per_mds=2,
            dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
        )
        cluster = ClusterMonitor(
            fs,
            ClusterConfig(
                num_shards=2,
                namespace="autotune-test",
                autotune=True,
                aggregator=AggregatorConfig(hwm=4, batch_events=64),
            ),
        )
        try:
            handles = list(cluster.shard_handles.values())
            push = cluster.context.push(hwm=4).connect(
                cluster.shard_configs["shard0"].inbound_endpoint
            )
            for _ in range(3):
                push.send([make_event("/a")])
            assert cluster.autotune_once() == 1
            assert cluster.shard_handles["shard0"].flush_batch_events == 128
            assert handles[1].flush_batch_events == 64  # unpressured
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# Multiproc backend
# ---------------------------------------------------------------------------


class TestMultiprocBridge:
    def test_roundtrip_and_api(self):
        transport = make_transport("multiproc")
        config = AggregatorConfig(shard_label="s0", trace_sample_rate=0.0)
        bridge = transport.process_shard("s0", config)
        try:
            sub = transport.sub().connect(config.publish_endpoint).subscribe("")
            push = transport.push().connect(config.inbound_endpoint)
            events = [make_event(f"/m/{i}") for i in range(12)]
            push.send(events[:6])
            push.send(events[6:])

            got = []

            def poll():
                try:
                    for _topic, payload in sub.recv_many(block=False):
                        assert payload.shard == "s0"
                        got.extend(iter_entries(payload))
                except WouldBlock:
                    pass

            assert pump_until(
                bridge, lambda: len(got) == 12 and not bridge.busy,
                extra=[poll],
            )
            assert [seq for seq, _ in got] == list(range(1, 13))
            assert [e.path for _, e in got] == [e.path for e in events]

            client = MonitorClient.for_aggregator(transport, bridge, timeout=10.0)
            assert client.last_seq() == 12
            page = client.events_since(0, limit=5)
            assert [seq for seq, _ in page] == [1, 2, 3, 4, 5]
        finally:
            transport.close()

    def test_kill_and_replay_preserves_sequence_numbers(self):
        transport = make_transport("multiproc")
        config = AggregatorConfig(shard_label="s0", trace_sample_rate=0.0)
        bridge = transport.process_shard("s0", config)
        try:
            push = transport.push().connect(config.inbound_endpoint)
            push.send([make_event(f"/m/{i}") for i in range(8)])
            assert pump_until(bridge, lambda: not bridge.busy)
            assert bridge.events_stored == 8

            bridge.kill_child()
            push.send([make_event(f"/m/{i}") for i in range(8, 11)])
            assert pump_until(bridge, lambda: not bridge.busy)
            assert bridge.events_stored == 11
            assert bridge.metrics.snapshot()["child_restarts"] >= 1

            client = MonitorClient.for_aggregator(transport, bridge, timeout=10.0)
            # The respawned child resumed the sequence space: the new
            # events carry 9..11, not 1..3.
            page = client.events_since(8)
            assert [seq for seq, _ in page] == [9, 10, 11]
        finally:
            transport.close()

    def test_close_terminates_child(self):
        transport = make_transport("multiproc")
        bridge = transport.process_shard(
            "s0", AggregatorConfig(trace_sample_rate=0.0)
        )
        proc = bridge._proc
        assert proc.is_alive()
        transport.close()
        assert not proc.is_alive()


def _run_cluster_trace(transport_name, namespace):
    """Identical synthetic activity through either backend; returns the
    delivered (shard, seq, path) set and the cluster's stats."""
    fs = LustreFilesystem(
        num_mds=2, mdts_per_mds=2,
        dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
    )
    cluster = ClusterMonitor(
        fs,
        ClusterConfig(
            num_shards=2,
            namespace=namespace,
            transport=transport_name,
            aggregator=AggregatorConfig(trace_sample_rate=0.0),
        ),
    )
    delivered = []
    try:
        cluster.subscribe(lambda seq, event: delivered.append((seq, event)))
        for d in range(4):
            fs.makedirs(f"/proj{d}")
            for i in range(6):
                fs.create(f"/proj{d}/f{i}.dat")
        cluster.drain()
        paths = sorted(
            event.path for _seq, event in delivered if event.path
        )
        return paths, len(delivered)
    finally:
        cluster.shutdown()


class TestMultiprocCluster:
    def test_delivers_same_event_set_as_inproc(self):
        inproc_paths, inproc_count = _run_cluster_trace("inproc", "eq-in")
        multi_paths, multi_count = _run_cluster_trace("multiproc", "eq-mp")
        assert multi_paths == inproc_paths
        assert multi_count == inproc_count

    def test_shard_kill_under_load_loses_nothing(self):
        """The acceptance property: SIGKILL a shard process mid-stream,
        keep feeding, and every event still arrives exactly once."""
        fs = LustreFilesystem(
            num_mds=2, mdts_per_mds=2,
            dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
        )
        cluster = ClusterMonitor(
            fs,
            ClusterConfig(
                num_shards=2,
                namespace="kill-test",
                transport="multiproc",
                aggregator=AggregatorConfig(trace_sample_rate=0.0),
            ),
        )
        delivered = []
        try:
            cluster.subscribe(
                lambda seq, event: delivered.append((seq, event))
            )
            created = []
            for d in range(4):
                fs.makedirs(f"/load{d}")
            for i in range(40):
                path = f"/load{i % 4}/f{i}.dat"
                fs.create(path)
                created.append(path)
                if i == 10:
                    cluster.pump()  # get batches moving first
                    cluster.crash_shard("shard0")  # real SIGKILL
                if i == 25:
                    cluster.crash_shard("shard1")
            cluster.drain()
            got_paths = sorted(
                event.path for _seq, event in delivered
                if event.path and "/f" in event.path
            )
            assert got_paths == sorted(created)  # nothing lost...
            assert len(got_paths) == len(set(got_paths))  # ...no dups
            restarts = sum(
                bridge.metrics.snapshot()["child_restarts"]
                for bridge in cluster.bridges.values()
            )
            assert restarts >= 1  # the fault actually happened
        finally:
            cluster.shutdown()
