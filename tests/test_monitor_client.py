"""Tests for the query-only MonitorClient."""

import pytest

from repro.core import LustreMonitor, MonitorClient
from repro.core.events import EventType
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


@pytest.fixture
def setup():
    clock = ManualClock()
    fs = LustreFilesystem(clock=clock)
    fs.makedirs("/proj/a")
    fs.makedirs("/proj/b")
    monitor = LustreMonitor(fs)
    client = MonitorClient.for_monitor(monitor)
    return clock, fs, monitor, client


class TestQueries:
    def test_last_seq(self, setup):
        _clock, fs, monitor, client = setup
        assert client.last_seq() == 0
        fs.create("/proj/a/f")
        monitor.drain()
        assert client.last_seq() == 1

    def test_events_since(self, setup):
        _clock, fs, monitor, client = setup
        for index in range(5):
            fs.create(f"/proj/a/f{index}")
        monitor.drain()
        newer = client.events_since(3)
        assert [seq for seq, _ in newer] == [4, 5]

    def test_recent(self, setup):
        _clock, fs, monitor, client = setup
        for index in range(5):
            fs.create(f"/proj/a/f{index}")
        monitor.drain()
        recent = client.recent(2)
        assert [event.name for _seq, event in recent] == ["f3", "f4"]

    def test_query_by_prefix(self, setup):
        _clock, fs, monitor, client = setup
        fs.create("/proj/a/one")
        fs.create("/proj/b/two")
        monitor.drain()
        matches = client.query(path_prefix="/proj/b")
        assert [event.path for _seq, event in matches] == ["/proj/b/two"]

    def test_query_by_type(self, setup):
        _clock, fs, monitor, client = setup
        fs.create("/proj/a/f")
        fs.unlink("/proj/a/f")
        monitor.drain()
        deleted = client.query(event_type=EventType.DELETED)
        assert len(deleted) == 1

    def test_query_by_time_window(self, setup):
        clock, fs, monitor, client = setup
        fs.create("/proj/a/early")
        clock.advance(100)
        fs.create("/proj/a/late")
        monitor.drain()
        recent = client.query(since_time=50)
        assert [event.name for _seq, event in recent] == ["late"]

    def test_activity_summary(self, setup):
        _clock, fs, monitor, client = setup
        fs.create("/proj/a/x")
        fs.write("/proj/a/x", 10)
        fs.unlink("/proj/a/x")
        monitor.drain()
        summary = client.activity_summary("/proj")
        assert summary == {"created": 1, "modified": 1, "deleted": 1}

    def test_live_mode_via_api_thread(self):
        fs = LustreFilesystem()
        fs.makedirs("/d")
        monitor = LustreMonitor(fs)
        monitor.start()
        try:
            client = MonitorClient(monitor.context, monitor.config.aggregator)
            fs.create("/d/f")
            import time

            deadline = time.time() + 3
            while client.last_seq() < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert client.last_seq() == 1
        finally:
            monitor.shutdown()


class TestConsumerLatencyTracking:
    def test_latency_recorded_on_shared_manual_clock(self):
        clock = ManualClock(start=100.0)
        fs = LustreFilesystem(clock=clock)
        monitor = LustreMonitor(fs)
        consumer = monitor.subscribe(lambda seq, ev: None).track_latency(
            clock=clock
        )
        fs.create("/f")       # timestamped at t=100
        clock.advance(0.25)   # pipeline "delay"
        monitor.drain()
        assert consumer.latency.total == 1
        assert consumer.latency.mean == pytest.approx(0.25, abs=0.01)

    def test_live_wall_clock_latency_small(self):
        import time

        fs = LustreFilesystem()  # wall clock
        monitor = LustreMonitor(fs)
        consumer = monitor.subscribe(lambda seq, ev: None).track_latency()
        monitor.start()
        try:
            for index in range(20):
                fs.create(f"/f{index}")
            deadline = time.time() + 5
            while consumer.latency.total < 20 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            monitor.shutdown()
        assert consumer.latency.total == 20
        assert consumer.latency.percentile(0.99) < 1.0  # sub-second live

    def test_disabled_by_default(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = LustreMonitor(fs)
        consumer = monitor.subscribe(lambda seq, ev: None)
        fs.create("/f")
        monitor.drain()
        assert consumer.latency is None
