"""Tests for the Watchdog-style observer layer."""

import pytest

from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import FileSystemEventHandler, Observer
from repro.util.clock import ManualClock


class Recorder(FileSystemEventHandler):
    def __init__(self):
        self.events = []

    def on_any_event(self, event):
        self.events.append(event)


@pytest.fixture
def fs():
    return MemoryFilesystem(clock=ManualClock())


@pytest.fixture
def observer(fs):
    return Observer(fs)


class TestScheduling:
    def test_schedule_crawls_tree_to_place_watches(self, fs, observer):
        fs.makedirs("/root/a/b")
        fs.makedirs("/root/c")
        observer.schedule(Recorder(), "/root")
        # /root, /root/a, /root/a/b, /root/c
        assert observer.directories_watched == 4
        assert observer.inotify.watch_count == 4

    def test_non_recursive_schedule_places_one_watch(self, fs, observer):
        fs.makedirs("/root/a")
        observer.schedule(Recorder(), "/root", recursive=False)
        assert observer.inotify.watch_count == 1

    def test_unschedule_stops_dispatch(self, fs, observer):
        fs.mkdir("/d")
        handler = Recorder()
        schedule = observer.schedule(handler, "/d")
        observer.unschedule(schedule)
        fs.create("/d/f")
        observer.drain()
        assert handler.events == []


class TestDispatch:
    def test_created_event(self, fs, observer):
        fs.mkdir("/d")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.create("/d/f.txt")
        observer.drain()
        (event,) = handler.events
        assert event.event_type == "created"
        assert event.src_path == "/d/f.txt"
        assert not event.is_directory

    def test_modified_event(self, fs, observer):
        fs.mkdir("/d")
        fs.create("/d/f")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.write("/d/f", b"x")
        observer.drain()
        assert [e.event_type for e in handler.events] == ["modified"]

    def test_deleted_event(self, fs, observer):
        fs.mkdir("/d")
        fs.create("/d/f")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.unlink("/d/f")
        observer.drain()
        assert handler.events[0].event_type == "deleted"

    def test_attrib_event(self, fs, observer):
        fs.mkdir("/d")
        fs.create("/d/f")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.setattr("/d/f", mode=0o600)
        observer.drain()
        assert handler.events[0].event_type == "attrib"

    def test_moved_event_pairs_src_and_dest(self, fs, observer):
        fs.mkdir("/d")
        fs.create("/d/a")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.rename("/d/a", "/d/b")
        observer.drain()
        (event,) = handler.events
        assert event.event_type == "moved"
        assert event.src_path == "/d/a"
        assert event.dest_path == "/d/b"

    def test_move_in_from_unwatched_tree_is_created(self, fs, observer):
        fs.mkdir("/outside")
        fs.mkdir("/watched")
        fs.create("/outside/f")
        handler = Recorder()
        observer.schedule(handler, "/watched")
        fs.rename("/outside/f", "/watched/f")
        observer.drain()
        (event,) = handler.events
        assert event.event_type == "created"
        assert event.src_path == "/watched/f"

    def test_specific_hooks_called(self, fs, observer):
        calls = []

        class Hooked(FileSystemEventHandler):
            def on_created(self, event):
                calls.append(("created", event.src_path))

            def on_deleted(self, event):
                calls.append(("deleted", event.src_path))

        fs.mkdir("/d")
        observer.schedule(Hooked(), "/d")
        fs.create("/d/f")
        fs.unlink("/d/f")
        observer.drain()
        assert calls == [("created", "/d/f"), ("deleted", "/d/f")]

    def test_non_recursive_ignores_subdirectory_events(self, fs, observer):
        fs.makedirs("/d/sub")
        handler = Recorder()
        observer.schedule(handler, "/d", recursive=False)
        fs.create("/d/sub/f")
        fs.create("/d/top")
        observer.drain()
        assert [e.src_path for e in handler.events] == ["/d/top"]


class TestRecursionMaintenance:
    def test_new_subdirectory_gets_watched(self, fs, observer):
        fs.mkdir("/d")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.mkdir("/d/new")
        observer.drain()  # processes the mkdir, placing the new watch
        fs.create("/d/new/f")
        observer.drain()
        paths = [e.src_path for e in handler.events]
        assert "/d/new" in paths
        assert "/d/new/f" in paths

    def test_deeply_nested_creation_chain(self, fs, observer):
        fs.mkdir("/d")
        handler = Recorder()
        observer.schedule(handler, "/d")
        fs.mkdir("/d/a")
        observer.drain()
        fs.mkdir("/d/a/b")
        observer.drain()
        fs.create("/d/a/b/f")
        observer.drain()
        assert "/d/a/b/f" in [e.src_path for e in handler.events]


class TestLiveMode:
    def test_background_thread_delivers(self, fs, observer):
        import time

        fs.mkdir("/d")
        handler = Recorder()
        observer.schedule(handler, "/d")
        observer.start(poll_interval=0.001)
        try:
            fs.create("/d/f")
            deadline = time.time() + 2
            while not handler.events and time.time() < deadline:
                time.sleep(0.005)
        finally:
            observer.stop()
        assert [e.event_type for e in handler.events] == ["created"]

    def test_stop_flushes_pending(self, fs, observer):
        fs.mkdir("/d")
        handler = Recorder()
        observer.schedule(handler, "/d")
        observer.start(poll_interval=5.0)  # long interval: rely on stop flush
        fs.create("/d/f")
        observer.stop()
        assert handler.events
