"""Tests for the fid2path resolver."""

import pytest

from repro.errors import UnknownFid
from repro.lustre import FidResolver, LustreFilesystem
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    fs = LustreFilesystem(clock=ManualClock())
    fs.makedirs("/a/b")
    fs.create("/a/b/f1")
    fs.create("/a/b/f2")
    return fs


class TestResolve:
    def test_resolves_to_absolute_path(self, fs):
        resolver = FidResolver(fs)
        assert resolver.resolve(fs.fid_of("/a/b/f1")) == "/a/b/f1"

    def test_counts_invocations(self, fs):
        resolver = FidResolver(fs)
        resolver.resolve(fs.fid_of("/a"))
        resolver.resolve(fs.fid_of("/a"))
        assert resolver.invocations == 2

    def test_unknown_fid_counts_failure(self, fs):
        resolver = FidResolver(fs)
        fid = fs.fid_of("/a/b/f1")
        fs.unlink("/a/b/f1")
        with pytest.raises(UnknownFid):
            resolver.resolve(fid)
        assert resolver.failures == 1

    def test_latency_hook_called_per_invocation(self, fs):
        calls = []
        resolver = FidResolver(fs, latency_hook=lambda: calls.append(1))
        resolver.resolve(fs.fid_of("/a"))
        resolver.resolve(fs.fid_of("/a/b"))
        assert len(calls) == 2

    def test_reset_counters(self, fs):
        resolver = FidResolver(fs)
        resolver.resolve(fs.fid_of("/a"))
        resolver.reset_counters()
        assert resolver.invocations == 0
        assert resolver.failures == 0


class TestResolveMany:
    def test_batch_charges_overhead_plus_unique(self, fs):
        # Documented cost model: one batch invocation + one unit per
        # unique FID (overhead + n * per_fid).  A flat charge of 1 made
        # the batching ablation overstate its win.
        resolver = FidResolver(fs)
        fids = [fs.fid_of("/a"), fs.fid_of("/a/b"), fs.fid_of("/a/b/f1")]
        result = resolver.resolve_many(fids)
        assert resolver.invocations == 1 + 3
        assert result[fs.fid_of("/a/b/f1")] == "/a/b/f1"

    def test_batch_duplicates_charged_once(self, fs):
        resolver = FidResolver(fs)
        fid = fs.fid_of("/a")
        resolver.resolve_many([fid, fid, fs.fid_of("/a/b"), fid])
        assert resolver.invocations == 1 + 2  # 2 unique across 4 requested

    def test_empty_batch_is_free(self, fs):
        resolver = FidResolver(fs)
        assert resolver.resolve_many([]) == {}
        assert resolver.invocations == 0

    def test_batch_deduplicates(self, fs):
        resolver = FidResolver(fs)
        fid = fs.fid_of("/a")
        result = resolver.resolve_many([fid, fid, fid])
        assert list(result) == [fid]

    def test_batch_maps_unresolvable_to_none(self, fs):
        resolver = FidResolver(fs)
        dead = fs.fid_of("/a/b/f2")
        fs.unlink("/a/b/f2")
        result = resolver.resolve_many([fs.fid_of("/a"), dead])
        assert result[dead] is None
        assert result[fs.fid_of("/a")] == "/a"
        assert resolver.failures == 1

    def test_latency_hook_once_per_batch(self, fs):
        calls = []
        resolver = FidResolver(fs, latency_hook=lambda: calls.append(1))
        resolver.resolve_many([fs.fid_of("/a"), fs.fid_of("/a/b")])
        assert len(calls) == 1
