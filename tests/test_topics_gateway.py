"""Tests for path-based publish topics and the iRODS-style gateway."""

import pytest

from repro.baselines import IngestGateway
from repro.core import AggregatorConfig, LustreMonitor, MonitorConfig
from repro.core.consumer import Consumer
from repro.core.events import EventType
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


class TestTopicByPath:
    def _monitor(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/projects")
        fs.makedirs("/scratch")
        monitor = LustreMonitor(
            fs,
            MonitorConfig(aggregator=AggregatorConfig(topic_by_path=True)),
        )
        return fs, monitor

    def test_scoped_subscriber_gets_only_its_subtree(self):
        fs, monitor = self._monitor()
        scoped = []
        consumer = Consumer(
            monitor.context,
            lambda seq, ev: scoped.append(ev.path),
            config=monitor.config.aggregator,
            topic="events./projects",
        )
        monitor.consumers.append(consumer)
        fs.create("/projects/keep.dat")
        fs.create("/scratch/skip.dat")
        monitor.drain()
        assert scoped == ["/projects/keep.dat"]
        # The filtering happened at the fabric, not in the consumer.
        assert consumer.events_consumed == 1

    def test_unscoped_subscriber_still_gets_everything(self):
        fs, monitor = self._monitor()
        everything = []
        monitor.subscribe(lambda seq, ev: everything.append(ev.path))
        fs.create("/projects/a")
        fs.create("/scratch/b")
        monitor.drain()
        assert everything == ["/projects/a", "/scratch/b"]

    def test_root_level_events_use_root_topic(self):
        fs, monitor = self._monitor()
        root_scoped = []
        consumer = Consumer(
            monitor.context,
            lambda seq, ev: root_scoped.append(ev.path),
            config=monitor.config.aggregator,
            topic="events./top.dat",
        )
        monitor.consumers.append(consumer)
        fs.create("/top.dat")
        monitor.drain()
        assert root_scoped == ["/top.dat"]

    def test_default_config_single_topic(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = LustreMonitor(fs)
        assert monitor.aggregator._topic_for.__self__.config.topic_by_path is False
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(seq))
        fs.create("/f")
        monitor.drain()
        assert seen == [1]


class TestIngestGateway:
    @pytest.fixture
    def setup(self):
        fs = LustreFilesystem(clock=ManualClock())
        gateway = IngestGateway(fs)
        events = []
        gateway.subscribe(events.append)
        return fs, gateway, events

    def test_mediated_lifecycle_raises_events(self, setup):
        fs, gateway, events = setup
        gateway.ingest("/grid/data.csv", b"1,2")
        gateway.update("/grid/data.csv", b"1,2,3")
        gateway.rename("/grid/data.csv", "/grid/data_v2.csv")
        gateway.remove("/grid/data_v2.csv")
        assert [e.event_type for e in events] == [
            EventType.CREATED, EventType.MODIFIED, EventType.MOVED,
            EventType.DELETED,
        ]
        assert events[2].old_path == "/grid/data.csv"

    def test_out_of_band_writes_invisible(self, setup):
        fs, gateway, events = setup
        gateway.ingest("/grid/seen.dat")
        fs.create("/grid/unseen.dat")  # direct write, bypassing the API
        assert [e.path for e in events] == ["/grid/seen.dat"]
        assert gateway.uncataloged_files("/grid") == ["/grid/unseen.dat"]

    def test_operations_on_uncataloged_rejected(self, setup):
        fs, gateway, _events = setup
        fs.makedirs("/grid")
        fs.create("/grid/rogue.dat")
        with pytest.raises(KeyError):
            gateway.update("/grid/rogue.dat", b"x")
        with pytest.raises(KeyError):
            gateway.remove("/grid/rogue.dat")

    def test_changelog_monitor_sees_what_gateway_misses(self, setup):
        """The §2 contrast: the ChangeLog monitor observes out-of-band
        mutations the closed grid cannot."""
        fs, gateway, gateway_events = setup
        monitor = LustreMonitor(fs)
        monitor_events = []
        monitor.subscribe(lambda seq, ev: monitor_events.append(ev.path))
        gateway.ingest("/grid/through_api.dat")
        fs.create("/grid/out_of_band.dat")
        monitor.drain()
        assert "/grid/out_of_band.dat" in monitor_events
        assert "/grid/through_api.dat" in monitor_events
        assert [e.path for e in gateway_events] == ["/grid/through_api.dat"]

    def test_works_on_local_filesystem_too(self):
        from repro.fs.memfs import MemoryFilesystem

        fs = MemoryFilesystem(clock=ManualClock())
        gateway = IngestGateway(fs)
        gateway.ingest("/g/a.txt", b"data")
        assert fs.read("/g/a.txt") == b"data"
        gateway.update("/g/a.txt", b"more")
        assert fs.read("/g/a.txt") == b"more"
