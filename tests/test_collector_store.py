"""Tests for the Collector and the rotating EventStore."""

import pytest

from repro.core.collector import CallbackSink, Collector, CollectorConfig
from repro.core.events import EventType, FileEvent
from repro.core.processor import ProcessorConfig
from repro.core.store import EventStore
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


def make_event(path="/f", event_type=EventType.CREATED, timestamp=0.0):
    return FileEvent(
        event_type=event_type, path=path, is_dir=False,
        timestamp=timestamp, name=path.rsplit("/", 1)[-1], source="lustre",
    )


@pytest.fixture
def fs():
    fs = LustreFilesystem(clock=ManualClock())
    fs.makedirs("/d")
    return fs


def make_collector(fs, sink=None, **kwargs):
    received = []
    sink = sink or CallbackSink(received.extend)
    collector = Collector(
        name="mds0",
        filesystem=fs,
        mds=fs.cluster.servers[0],
        sink=sink,
        config=CollectorConfig(**kwargs),
    )
    return collector, received


class TestCollectorBasics:
    def test_registration_starts_at_tail(self, fs):
        fs.create("/d/before")  # happens before the collector exists
        collector, received = make_collector(fs)
        collector.poll_once()
        assert received == []

    def test_poll_reports_events_in_order(self, fs):
        collector, received = make_collector(fs)
        for index in range(5):
            fs.create(f"/d/f{index}")
        collector.poll_once()
        assert [e.name for e in received] == [f"f{i}" for i in range(5)]

    def test_poll_respects_read_batch(self, fs):
        collector, received = make_collector(fs, read_batch=2)
        for index in range(5):
            fs.create(f"/d/f{index}")
        assert collector.poll_once() == 2
        assert collector.drain() == 3

    def test_changelog_purged_after_report(self, fs):
        collector, _received = make_collector(fs)
        for index in range(5):
            fs.create(f"/d/f{index}")
        collector.poll_once()
        assert fs.changelogs()[0].backlog == 0

    def test_counters(self, fs):
        collector, _received = make_collector(fs)
        fs.create("/d/f")
        fs.unlink("/d/f")
        collector.drain()
        assert collector.records_read == 2
        assert collector.events_reported == 2


class TestReportFailureHandling:
    class FlakySink:
        def __init__(self, fail_times):
            self.fail_times = fail_times
            self.batches = []

        def send(self, payload):
            if self.fail_times > 0:
                self.fail_times -= 1
                raise ConnectionError("injected")
            self.batches.append(list(payload))

    def test_failed_report_does_not_purge(self, fs):
        sink = self.FlakySink(fail_times=1)
        collector, _ = make_collector(fs, sink=sink)
        fs.create("/d/f")
        collector.poll_once()
        assert collector.report_failures == 1
        # The CREAT record is retained (plus the pre-registration MKDIR,
        # which purges only once a clear advances the horizon).
        assert fs.changelogs()[0].backlog == 2

    def test_retry_redelivers_same_events(self, fs):
        sink = self.FlakySink(fail_times=2)
        collector, _ = make_collector(fs, sink=sink)
        fs.create("/d/f")
        collector.poll_once()
        collector.poll_once()
        collector.poll_once()
        assert len(sink.batches) == 1
        assert sink.batches[0][0].name == "f"
        assert fs.changelogs()[0].backlog == 0

    def test_no_events_lost_under_intermittent_failures(self, fs):
        sink = self.FlakySink(fail_times=0)
        collector, _ = make_collector(fs, sink=sink, read_batch=3)
        names = []
        for index in range(10):
            fs.create(f"/d/f{index}")
            names.append(f"f{index}")
        # Fail every other poll round.
        rounds = 0
        while fs.changelogs()[0].backlog or rounds < 2:
            sink.fail_times = 1 if rounds % 2 == 0 else 0
            collector.poll_once()
            rounds += 1
            if rounds > 50:
                break
        reported = [e.name for batch in sink.batches for e in batch]
        assert reported == names


class TestMultiMdt:
    def test_collector_covers_all_mdts_of_its_mds(self):
        from repro.lustre import DnePolicy

        fs = LustreFilesystem(
            num_mds=1, mdts_per_mds=2, dne_policy=DnePolicy.ROUND_ROBIN,
            clock=ManualClock(),
        )
        collector, received = make_collector(fs)
        fs.mkdir("/a")  # mdt 0
        fs.mkdir("/b")  # mdt 1
        fs.create("/a/f")
        fs.create("/b/g")
        collector.drain()
        mdts = {e.mdt_index for e in received}
        assert mdts == {0, 1}

    def test_shutdown_deregisters_users(self, fs):
        collector, _ = make_collector(fs)
        changelog = fs.changelogs()[0]
        assert len(changelog.users) == 1
        collector.shutdown()
        assert changelog.users == []


class TestLiveCollector:
    def test_threaded_collection(self, fs):
        import time

        collector, received = make_collector(fs, poll_interval=0.001)
        collector.start()
        try:
            for index in range(10):
                fs.create(f"/d/f{index}")
            deadline = time.time() + 3
            while len(received) < 10 and time.time() < deadline:
                time.sleep(0.005)
        finally:
            collector.stop()
        assert [e.name for e in received] == [f"f{i}" for i in range(10)]


class TestEventStore:
    def test_append_assigns_sequences(self):
        store = EventStore()
        assert store.append(make_event()) == 1
        assert store.append(make_event()) == 2
        assert store.last_seq == 2

    def test_rotation_evicts_oldest(self):
        store = EventStore(max_events=3)
        for index in range(5):
            store.append(make_event(f"/f{index}"))
        assert len(store) == 3
        assert store.total_rotated == 2
        assert store.oldest_retained_seq == 3

    def test_since_returns_newer_events(self):
        store = EventStore()
        for index in range(5):
            store.append(make_event(f"/f{index}"))
        newer = store.since(3)
        assert [seq for seq, _ in newer] == [4, 5]

    def test_since_with_limit(self):
        store = EventStore()
        for index in range(5):
            store.append(make_event(f"/f{index}"))
        assert len(store.since(0, limit=2)) == 2

    def test_recent(self):
        store = EventStore()
        for index in range(5):
            store.append(make_event(f"/f{index}"))
        recent = store.recent(2)
        assert [event.path for _seq, event in recent] == ["/f3", "/f4"]

    def test_query_by_prefix(self):
        store = EventStore()
        store.append(make_event("/a/one"))
        store.append(make_event("/b/two"))
        matches = store.query(path_prefix="/a")
        assert [event.path for _seq, event in matches] == ["/a/one"]

    def test_query_by_type(self):
        store = EventStore()
        store.append(make_event("/a", EventType.CREATED))
        store.append(make_event("/a", EventType.DELETED))
        matches = store.query(event_type=EventType.DELETED)
        assert len(matches) == 1

    def test_query_by_time_window(self):
        store = EventStore()
        store.append(make_event("/a", timestamp=1.0))
        store.append(make_event("/b", timestamp=5.0))
        store.append(make_event("/c", timestamp=9.0))
        matches = store.query(since_time=2.0, until_time=8.0)
        assert [event.path for _seq, event in matches] == ["/b"]

    def test_query_limit(self):
        store = EventStore()
        for index in range(10):
            store.append(make_event(f"/f{index}"))
        assert len(store.query(limit=4)) == 4

    def test_extend(self):
        store = EventStore()
        seqs = store.extend([make_event("/a"), make_event("/b")])
        assert seqs == [1, 2]

    def test_memory_estimate_scales_with_retention(self):
        store = EventStore(max_events=100)
        for index in range(200):
            store.append(make_event(f"/f{index}"))
        assert store.approximate_memory_bytes() == 100 * 700

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ValueError):
            EventStore(max_events=0)

    def test_negative_recent_rejected(self):
        with pytest.raises(ValueError):
            EventStore().recent(-1)


class TestIndexedQuery:
    """query() must scan only the candidate set the indexes surface."""

    def _mixed_store(self, n=1000, max_events=None):
        store = EventStore(**({"max_events": max_events} if max_events else {}))
        types = [EventType.CREATED, EventType.DELETED, EventType.MODIFIED]
        store.extend(
            [
                make_event(f"/d{i % 3}/f{i}", types[i % 3], timestamp=float(i))
                for i in range(n)
            ]
        )
        return store

    def test_typed_query_scans_only_that_bucket(self):
        store = self._mixed_store(900)
        store.query(event_type=EventType.DELETED)  # settle lazy rebuilds
        store.reset_op_counters()
        matches = store.query(event_type=EventType.DELETED)
        assert len(matches) == 300
        assert store.events_scanned == 300  # not 900

    def test_time_window_query_binary_searches_bounds(self):
        store = self._mixed_store(1000)
        store.query()  # settle
        store.reset_op_counters()
        matches = store.query(since_time=100.0, until_time=109.0)
        assert [event.timestamp for _seq, event in matches] == [
            float(t) for t in range(100, 110)
        ]
        assert store.events_scanned == 10  # not 1000

    def test_typed_time_window_combines_both_indexes(self):
        store = self._mixed_store(900)
        store.reset_op_counters()
        matches = store.query(
            event_type=EventType.CREATED, since_time=0.0, until_time=89.0
        )
        assert all(
            event.event_type is EventType.CREATED for _seq, event in matches
        )
        assert len(matches) == 30
        assert store.events_scanned == 30

    def test_time_window_merge_preserves_sequence_order(self):
        store = self._mixed_store(300)
        matches = store.query(since_time=50.0, until_time=250.0)
        seqs = [seq for seq, _event in matches]
        assert seqs == sorted(seqs)

    def test_indexed_query_equals_full_scan(self):
        store = self._mixed_store(300, max_events=200)  # with rotation
        cases = [
            {},
            {"event_type": EventType.DELETED},
            {"since_time": 120.0},
            {"until_time": 250.0},
            {"since_time": 150.0, "until_time": 220.0},
            {"event_type": EventType.CREATED, "since_time": 180.0},
            {"path_prefix": "/d1"},
            {"path_prefix": "/d2", "event_type": EventType.MODIFIED,
             "since_time": 110.0, "until_time": 290.0},
            {"event_type": EventType.DELETED, "limit": 5},
        ]
        for kwargs in cases:
            indexed = store.query(**kwargs)
            linear = [
                (seq, event)
                for seq, event in store.since(0)
                if (kwargs.get("event_type") is None
                    or event.event_type is kwargs["event_type"])
                and (kwargs.get("since_time") is None
                     or event.timestamp >= kwargs["since_time"])
                and (kwargs.get("until_time") is None
                     or event.timestamp <= kwargs["until_time"])
                and (kwargs.get("path_prefix") is None
                     or event.matches_prefix(kwargs["path_prefix"]))
            ]
            if kwargs.get("limit") is not None:
                linear = linear[: kwargs["limit"]]
            assert indexed == linear, kwargs

    def test_rotation_keeps_buckets_consistent(self):
        store = self._mixed_store(500, max_events=120)
        assert store.total_rotated == 380
        matches = store.query(event_type=EventType.CREATED)
        retained = store.since(0)
        expected = [
            (seq, event) for seq, event in retained
            if event.event_type is EventType.CREATED
        ]
        assert matches == expected

    def test_non_monotone_timestamps_fall_back_to_full_scan(self):
        store = EventStore()
        store.extend(
            [
                make_event("/a", timestamp=5.0),
                make_event("/b", timestamp=1.0),  # goes backwards
                make_event("/c", timestamp=9.0),
            ]
        )
        matches = store.query(since_time=0.0, until_time=2.0)
        assert [event.path for _seq, event in matches] == ["/b"]

    def test_hand_mutated_window_is_reindexed(self):
        # Restores and tests build stores by touching _events directly;
        # the first query must notice and rebuild the buckets.
        store = EventStore()
        store._events.extend(
            [(1, make_event("/a", EventType.CREATED)),
             (2, make_event("/b", EventType.DELETED))]
        )
        store._next_seq = 3
        matches = store.query(event_type=EventType.DELETED)
        assert [event.path for _seq, event in matches] == ["/b"]

    def test_load_restores_query_index(self, tmp_path):
        store = self._mixed_store(90)
        path = str(tmp_path / "events.jsonl")
        store.save(path)
        restored = EventStore.load(path)
        assert restored.query(event_type=EventType.MODIFIED) == store.query(
            event_type=EventType.MODIFIED
        )

    def test_query_for_absent_type_scans_nothing(self):
        store = self._mixed_store(300)
        store.reset_op_counters()
        assert store.query(event_type=EventType.ATTRIB) == []
        assert store.events_scanned == 0
