"""Tests for the lctl/lfs operator facades."""

import pytest

from repro.errors import LustreError
from repro.lustre import DnePolicy, LctlAdmin, LfsClient, LustreFilesystem
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    return LustreFilesystem(
        clock=ManualClock(), num_mds=2, dne_policy=DnePolicy.ROUND_ROBIN,
        num_oss=1, osts_per_oss=2,
    )


@pytest.fixture
def lctl(fs):
    return LctlAdmin(fs)


@pytest.fixture
def lfs(fs):
    return LfsClient(fs)


class TestLctl:
    def test_dl_lists_devices(self, lctl):
        lines = lctl.dl()
        assert "lustre-MDT0000 mdt mds0 UP" in lines
        assert "lustre-MDT0001 mdt mds1 UP" in lines
        assert any("OST0000" in line for line in lines)

    def test_changelog_register_read_clear(self, fs, lctl):
        user = lctl.changelog_register("lustre-MDT0000")
        assert user.startswith("cl")
        fs.create("/f")  # root -> MDT0
        lines = lctl.changelog("MDT0000", user)
        assert len(lines) == 1 and "01CREAT" in lines[0]
        index = int(lines[0].split()[0])
        lctl.changelog_clear("MDT0000", user, index)
        assert lctl.changelog("MDT0000", user) == []

    def test_changelog_register_accepts_bare_index(self, lctl):
        user = lctl.changelog_register("1")
        lctl.changelog_deregister("1", user)

    def test_set_param_mask_glob(self, fs, lctl):
        updated = lctl.set_param("mdd.*.changelog_mask", "CREAT UNLNK")
        assert updated == 2
        user = lctl.changelog_register("MDT0000")
        fs.create("/f")
        fs.write("/f", 10)  # CLOSE suppressed
        lines = lctl.changelog("MDT0000", user)
        assert len(lines) == 1

    def test_set_param_single_target(self, lctl):
        assert lctl.set_param("mdd.lustre-MDT0001.changelog_mask", "MKDIR") == 1
        params = lctl.get_param("mdd.*.changelog_mask")
        assert "MKDIR" in params["mdd.lustre-MDT0001.changelog_mask"]
        # MDT0000 untouched: still logs everything.
        assert "CREAT" in params["mdd.lustre-MDT0000.changelog_mask"]

    def test_set_param_unknown_type_rejected(self, lctl):
        with pytest.raises(LustreError):
            lctl.set_param("mdd.*.changelog_mask", "EXPLODE")

    def test_set_param_unknown_parameter_rejected(self, lctl):
        with pytest.raises(LustreError):
            lctl.set_param("osc.*.max_dirty_mb", "64")

    def test_set_param_no_match_rejected(self, lctl):
        with pytest.raises(LustreError):
            lctl.set_param("mdd.lustre-MDT0099.changelog_mask", "CREAT")


class TestLfs:
    def test_df_reports_usage(self, fs, lfs):
        fs.create("/big", size=1000)
        lines = lfs.df()
        assert any("OST" in line for line in lines)
        summary = lines[-1]
        assert "used=1000" in summary

    def test_getstripe_file(self, fs, lfs):
        fs.mkdir("/wide")
        fs.set_stripe("/wide", 2)
        fs.create("/wide/f", size=10)
        info = lfs.getstripe("/wide/f")
        assert info["stripe_count"] == 2
        assert not info["default"]
        assert len(info["objects"]) == 2

    def test_getstripe_directory_default(self, fs, lfs):
        fs.mkdir("/d")
        lfs.setstripe("/d", 2)
        info = lfs.getstripe("/d")
        assert info == {"path": "/d", "stripe_count": 2, "default": True}

    def test_path2fid_fid2path_roundtrip(self, fs, lfs):
        fs.makedirs("/a/b")
        fs.create("/a/b/f")
        fid_text = lfs.path2fid("/a/b/f")
        assert fid_text.startswith("[0x")
        assert lfs.fid2path(fid_text) == "/a/b/f"

    def test_fid2path_accepts_fid_object(self, fs, lfs):
        fs.create("/x")
        assert lfs.fid2path(fs.fid_of("/x")) == "/x"
