"""Tests for the processing stage: resolution, batching, caching."""

import pytest

from repro.core.events import EventType
from repro.core.processor import EventProcessor, PathCache, ProcessorConfig
from repro.lustre import FidResolver, LustreFilesystem
from repro.lustre.fid import Fid
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    fs = LustreFilesystem(clock=ManualClock())
    fs.makedirs("/proj/data")
    return fs


def records_for(fs, user, changelog):
    return changelog.read(user)


def fresh_pipeline(fs, **config):
    changelog = fs.changelogs()[0]
    user = changelog.register_user()
    resolver = FidResolver(fs)
    processor = EventProcessor(resolver, ProcessorConfig(**config))
    return changelog, user, resolver, processor


class TestPathAssembly:
    def test_event_path_from_parent_resolution(self, fs):
        changelog, user, resolver, processor = fresh_pipeline(fs)
        fs.create("/proj/data/f.dat")
        events = processor.process(changelog.read(user), mdt_index=0)
        assert [e.path for e in events] == ["/proj/data/f.dat"]

    def test_root_parent_resolves(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs)
        fs.create("/top.txt")
        (event,) = processor.process(changelog.read(user), mdt_index=0)
        assert event.path == "/top.txt"

    def test_delete_events_resolve_via_parent(self, fs):
        """The target FID of an UNLNK is gone; the parent still resolves."""
        changelog, user, _resolver, processor = fresh_pipeline(fs)
        fs.create("/proj/data/gone.dat")
        fs.unlink("/proj/data/gone.dat")
        events = processor.process(changelog.read(user), mdt_index=0)
        deleted = [e for e in events if e.event_type is EventType.DELETED]
        assert deleted[0].path == "/proj/data/gone.dat"
        assert processor.unresolved == 0

    def test_rename_produces_old_and_new_paths(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs)
        fs.create("/proj/data/a.dat")
        fs.rename("/proj/data/a.dat", "/proj/data/b.dat")
        events = processor.process(changelog.read(user), mdt_index=0)
        moved = [e for e in events if e.event_type is EventType.MOVED][0]
        assert moved.old_path == "/proj/data/a.dat"
        assert moved.path == "/proj/data/b.dat"

    def test_parent_deleted_before_processing_marks_unresolved(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs)
        fs.mkdir("/proj/tmp")
        fs.create("/proj/tmp/f")
        fs.unlink("/proj/tmp/f")
        fs.rmdir("/proj/tmp")
        events = processor.process(changelog.read(user), mdt_index=0)
        # The create/unlink of /proj/tmp/f cannot resolve /proj/tmp anymore.
        assert processor.unresolved >= 1
        assert any(not e.resolved for e in events)

    def test_order_preserved(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs, batch_size=4)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        events = processor.process(changelog.read(user), mdt_index=0)
        indices = [e.record_index for e in events]
        assert indices == sorted(indices)


class TestResolverCost:
    def test_per_event_resolution_invokes_tool_per_record(self, fs):
        changelog, user, resolver, processor = fresh_pipeline(fs)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        processor.process(changelog.read(user), mdt_index=0)
        assert resolver.invocations == 10

    def test_batching_collapses_invocations(self, fs):
        changelog, user, resolver, processor = fresh_pipeline(fs, batch_size=10)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        processor.process(changelog.read(user), mdt_index=0)
        # One resolve_many: 1 batch overhead + 1 unique parent FID.
        assert resolver.invocations == 2

    def test_caching_collapses_invocations(self, fs):
        changelog, user, resolver, processor = fresh_pipeline(fs, cache_size=16)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        processor.process(changelog.read(user), mdt_index=0)
        assert resolver.invocations == 1
        assert processor.cache.hits == 9

    def test_cache_and_batching_compose(self, fs):
        changelog, user, resolver, processor = fresh_pipeline(
            fs, batch_size=5, cache_size=16
        )
        for index in range(20):
            fs.create(f"/proj/data/f{index}")
        processor.process(changelog.read(user), mdt_index=0)
        # First chunk misses once (1 batch + 1 unique FID); later chunks
        # hit the cache entirely and never reach the resolver.
        assert resolver.invocations == 2


class TestCacheConsistency:
    def test_rename_of_directory_invalidates_subtree(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs, cache_size=16)
        fs.mkdir("/proj/old")
        fs.create("/proj/old/f1")
        events = processor.process(changelog.read(user), mdt_index=0)
        assert events[-1].path == "/proj/old/f1"
        fs.rename("/proj/old", "/proj/new")
        fs.create("/proj/new/f2")
        events = processor.process(changelog.read(user), mdt_index=0)
        created = [e for e in events if e.name == "f2"][0]
        assert created.path == "/proj/new/f2"  # not the stale /proj/old/f2

    def test_rmdir_invalidates_cached_entry(self, fs):
        changelog, user, _resolver, processor = fresh_pipeline(fs, cache_size=16)
        fs.mkdir("/proj/tmp")
        fs.create("/proj/tmp/f")
        processor.process(changelog.read(user), mdt_index=0)
        fs.unlink("/proj/tmp/f")
        fs.rmdir("/proj/tmp")
        fs.mkdir("/proj/tmp2")
        fs.create("/proj/tmp2/g")
        events = processor.process(changelog.read(user), mdt_index=0)
        final = [e for e in events if e.name == "g"][0]
        assert final.path == "/proj/tmp2/g"


class TestPathCacheUnit:
    def test_lru_eviction(self):
        cache = PathCache(capacity=2)
        a, b, c = Fid(1, 1), Fid(1, 2), Fid(1, 3)
        cache.put(a, "/a")
        cache.put(b, "/b")
        cache.get(a)  # refresh a
        cache.put(c, "/c")  # evicts b
        assert cache.peek(b) is None
        assert cache.peek(a) == "/a"

    def test_hit_rate(self):
        cache = PathCache(capacity=4)
        fid = Fid(1, 1)
        cache.get(fid)  # miss
        cache.put(fid, "/x")
        cache.get(fid)  # hit
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalidate_prefix(self):
        cache = PathCache(capacity=8)
        cache.put(Fid(1, 1), "/a/b")
        cache.put(Fid(1, 2), "/a/b/c")
        cache.put(Fid(1, 3), "/a/bc")
        removed = cache.invalidate_prefix("/a/b")
        assert removed == 2
        assert cache.peek(Fid(1, 3)) == "/a/bc"

    def test_peek_does_not_count(self):
        cache = PathCache(capacity=2)
        cache.peek(Fid(1, 1))
        assert cache.misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PathCache(0)


class TestConfigValidation:
    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(batch_size=0)

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(cache_size=-1)
