"""Regression + property tests for the batched aggregator hot path.

Covers the four bug fixes that rode along with end-to-end batching:

1. ``FidResolver.resolve_many`` charges one batch invocation plus one
   unit per unique FID (see test_fid2path.py for the unit-level tests).
2. ``EventStore.save``/``load`` round-trip the lifetime
   ``total_stored``/``total_rotated`` counters.
3. ``Aggregator.serve_api_once`` computes the answer first and sends
   exactly once on the one-shot REQ/REP channel.
4. ``EventStore.extend`` is atomic: one lock acquisition, contiguous
   sequence numbers per batch even under concurrent extenders.

Plus the tentpole properties: the batch wire format (EventBatch + the
legacy single-event shim), the indexed ``since`` scan, the flush
policies, and a hypothesis property that batched and per-event ingest
produce identical store contents and publish order.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Aggregator,
    AggregatorConfig,
    Consumer,
    EventBatch,
    EventStore,
    iter_entries,
)
from repro.core.events import EventType, FileEvent, approx_wire_bytes
from repro.errors import MessagingError, WouldBlock
from repro.msgq import Context


def make_event(path, event_type=EventType.CREATED, timestamp=1.0):
    return FileEvent(
        event_type=event_type,
        path=path,
        is_dir=False,
        timestamp=timestamp,
        name=path.rsplit("/", 1)[-1],
        source="lustre",
    )


# ---------------------------------------------------------------------------
# Atomic extend (bug 4) + indexed since
# ---------------------------------------------------------------------------


class TestAtomicExtend:
    def test_extend_is_one_lock_acquisition(self):
        store = EventStore()
        store.extend([make_event(f"/a/f{i}") for i in range(100)])
        assert store.lock_acquisitions == 1
        assert store.total_stored == 100

    def test_extend_assigns_contiguous_seqs(self):
        store = EventStore()
        seqs = store.extend([make_event(f"/a/f{i}") for i in range(10)])
        assert seqs == list(range(1, 11))

    def test_append_still_works(self):
        store = EventStore()
        assert store.append(make_event("/a/f")) == 1
        assert store.append(make_event("/a/g")) == 2

    def test_concurrent_extends_never_interleave_a_batch(self):
        store = EventStore()
        results = {}

        def worker(tag):
            batch = [make_event(f"/{tag}/f{i}") for i in range(50)]
            results[tag] = store.extend(batch)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in "abcd"
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for seqs in results.values():
            # Each batch's numbering is one contiguous run.
            assert seqs == list(range(seqs[0], seqs[0] + 50))
        all_seqs = sorted(s for seqs in results.values() for s in seqs)
        assert all_seqs == list(range(1, 201))
        # And the stored order matches the issued numbering.
        assert [seq for seq, _ in store.since(0)] == list(range(1, 201))

    def test_extend_rotation_keeps_window_contiguous(self):
        store = EventStore(max_events=10)
        store.extend([make_event(f"/a/f{i}") for i in range(25)])
        assert store.total_rotated == 15
        assert store.oldest_retained_seq == 16
        assert [seq for seq, _ in store.since(0)] == list(range(16, 26))


class TestIndexedSince:
    def test_since_never_scans_below_seq(self):
        store = EventStore()
        store.extend([make_event(f"/a/f{i}") for i in range(1000)])
        store.reset_op_counters()
        result = store.since(990)
        assert [seq for seq, _ in result] == list(range(991, 1001))
        # The scan-count probe: only matched entries were touched.
        assert store.events_scanned == 10

    def test_since_honors_limit_during_scan(self):
        store = EventStore()
        store.extend([make_event(f"/a/f{i}") for i in range(1000)])
        store.reset_op_counters()
        result = store.since(0, limit=5)
        assert [seq for seq, _ in result] == [1, 2, 3, 4, 5]
        assert store.events_scanned == 5

    def test_since_after_rotation(self):
        store = EventStore(max_events=100)
        store.extend([make_event(f"/a/f{i}") for i in range(250)])
        assert store.since(100)[0][0] == 151  # below-window seq clamps
        assert store.since(200, limit=3) == store.since(200)[:3]
        assert store.since(250) == []

    def test_since_bisect_fallback_on_noncontiguous_window(self):
        # A hand-built store with a gap exercises the bisect path.
        store = EventStore()
        store._events.extend(
            [(1, make_event("/a")), (5, make_event("/b")),
             (9, make_event("/c"))]
        )
        store._next_seq = 10
        assert [seq for seq, _ in store.since(1)] == [5, 9]
        assert [seq for seq, _ in store.since(5)] == [9]
        assert store.since(9) == []


# ---------------------------------------------------------------------------
# save/load counter persistence (bug 2)
# ---------------------------------------------------------------------------


class TestPersistedCounters:
    def test_save_load_roundtrips_lifetime_counters(self, tmp_path):
        store = EventStore(max_events=10)
        store.extend([make_event(f"/a/f{i}") for i in range(25)])
        assert (store.total_stored, store.total_rotated) == (25, 15)
        path = str(tmp_path / "store.jsonl")
        store.save(path)
        restored = EventStore.load(path)
        assert restored.total_stored == 25
        assert restored.total_rotated == 15
        assert restored.last_seq == 25
        # Numbering continues without reuse and keeps counting.
        restored.append(make_event("/a/new"))
        assert restored.total_stored == 26

    def test_load_derives_counters_from_legacy_header(self, tmp_path):
        import json

        store = EventStore(max_events=10)
        store.extend([make_event(f"/a/f{i}") for i in range(25)])
        path = str(tmp_path / "store.jsonl")
        store.save(path)
        # Strip the new header fields, as a pre-fix save would have.
        with open(path) as handle:
            lines = handle.readlines()
        header = json.loads(lines[0])
        del header["total_stored"], header["total_rotated"]
        lines[0] = json.dumps(header) + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        restored = EventStore.load(path)
        assert restored.total_stored == 25
        assert restored.total_rotated == 15


# ---------------------------------------------------------------------------
# serve_api_once sends exactly once (bug 3)
# ---------------------------------------------------------------------------


class _CountingChannel:
    """A reply channel that records sends and can fail on demand."""

    def __init__(self, fail=False):
        self.sends = []
        self.fail = fail

    def send(self, value):
        self.sends.append(value)
        if self.fail:
            raise MessagingError("injected send failure")


class TestServeApiOnce:
    def build(self):
        context = Context()
        return Aggregator(context, AggregatorConfig(
            inbound_endpoint="inproc://api-in",
            publish_endpoint="inproc://api-pub",
            api_endpoint="inproc://api-rep",
        ))

    def test_handler_error_is_sent_exactly_once(self):
        aggregator = self.build()
        channel = _CountingChannel()
        aggregator.api._requests.put(({"op": "no-such-op"}, channel))
        assert aggregator.serve_api_once() is True
        assert len(channel.sends) == 1
        assert isinstance(channel.sends[0], ValueError)

    def test_send_failure_does_not_send_twice(self):
        # Regression: the old code answered inside try/except and sent
        # the *exception* as a second reply when the send itself failed,
        # violating the one-shot REQ/REP contract.
        aggregator = self.build()
        channel = _CountingChannel(fail=True)
        aggregator.api._requests.put(({"op": "last_seq"}, channel))
        with pytest.raises(MessagingError):
            aggregator.serve_api_once()
        assert len(channel.sends) == 1  # never a second send

    def test_reply_channel_is_one_shot(self):
        context = Context()
        server = context.rep().bind("inproc://one-shot")
        client = context.req().connect("inproc://one-shot")
        result = {}

        def requester():
            result["reply"] = client.request("ping", timeout=5.0)

        thread = threading.Thread(target=requester)
        thread.start()
        request, reply_channel = server.recv(timeout=5.0)
        reply_channel.send("pong")
        with pytest.raises(MessagingError):
            reply_channel.send("pong again")
        thread.join()
        assert result["reply"] == "pong"

    def test_normal_answer_still_delivered(self):
        aggregator = self.build()
        aggregator.store.extend([make_event("/a/f")])
        channel = _CountingChannel()
        aggregator.api._requests.put(({"op": "last_seq"}, channel))
        aggregator.serve_api_once()
        assert channel.sends == [1]


# ---------------------------------------------------------------------------
# Batch wire format + shim
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_iter_entries_on_batch(self):
        event = make_event("/a/f")
        batch = EventBatch(((1, event), (2, event)))
        assert iter_entries(batch) == ((1, event), (2, event))
        assert len(batch) == 2
        assert batch.first_seq == 1
        assert batch.last_seq == 2

    def test_iter_entries_on_legacy_single(self):
        event = make_event("/a/f")
        assert iter_entries((7, event)) == ((7, event),)

    def test_consumer_accepts_legacy_single_event_messages(self):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint="inproc://legacy-in",
            publish_endpoint="inproc://legacy-pub",
            api_endpoint="inproc://legacy-rep",
        )
        Aggregator(context, config)  # binds endpoints the consumer needs
        seen = []
        consumer = Consumer(
            context, lambda seq, ev: seen.append(seq), config=config
        )
        publisher = context.pub().bind("inproc://legacy-pub2")
        # Simulate an old publisher on the consumer's subscription.
        consumer.subscription.connect("inproc://legacy-pub2")
        publisher.send(config.publish_topic, (1, make_event("/a/f")))
        publisher.send(
            config.publish_topic,
            EventBatch(((2, make_event("/a/g")), (3, make_event("/a/h")))),
        )
        assert consumer.poll_once() == 3
        assert seen == [1, 2, 3]
        assert consumer.batches_consumed == 2

    def test_aggregator_publishes_topic_runs_in_seq_order(self):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint="inproc://group-in",
            publish_endpoint="inproc://group-pub",
            api_endpoint="inproc://group-rep",
            topic_by_path=True,
        )
        aggregator = Aggregator(context, config)
        subscriber = (
            context.sub().connect("inproc://group-pub").subscribe("events")
        )
        batch = [
            make_event("/projects/a"),
            make_event("/scratch/b"),
            make_event("/projects/c"),
            make_event("/projects/d"),
        ]
        aggregator._handle_batch(batch)
        # One PUB message per contiguous same-topic run — never regrouped
        # across runs, so chunks go out in global sequence order.
        assert aggregator.batches_published == 3
        messages = subscriber.recv_many(block=False)
        assert [
            (topic, [seq for seq, _ in iter_entries(payload)])
            for topic, payload in messages
        ] == [
            ("events./projects", [1]),
            ("events./scratch", [2]),
            ("events./projects", [3, 4]),
        ]

    def test_broad_prefix_subscriber_gets_every_event_of_multitopic_batch(
        self,
    ):
        # Regression: grouping a whole batch per topic published seqs
        # [1, 3] then [2, 4]; a broad-prefix subscriber's watermark
        # dedup then dropped seq 2 as a duplicate.
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint="inproc://broad-in",
            publish_endpoint="inproc://broad-pub",
            api_endpoint="inproc://broad-rep",
            topic_by_path=True,
        )
        aggregator = Aggregator(context, config)
        seen = []
        # Default topic "events" matches every per-path topic.
        consumer = Consumer(
            context, lambda seq, ev: seen.append(seq), config=config
        )
        aggregator._handle_batch(
            [make_event(p) for p in ["/a/f", "/b/f", "/a/g", "/b/g"]]
        )
        assert consumer.poll_once() == 4
        assert seen == [1, 2, 3, 4]
        assert consumer.duplicates_skipped == 0

    def test_flush_policy_splits_batches(self):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint="inproc://flush-in",
            publish_endpoint="inproc://flush-pub",
            api_endpoint="inproc://flush-rep",
            batch_events=4,
        )
        aggregator = Aggregator(context, config)
        subscriber = (
            context.sub().connect("inproc://flush-pub").subscribe("events")
        )
        aggregator._handle_batch([make_event(f"/a/f{i}") for i in range(10)])
        messages = subscriber.recv_many(block=False)
        assert [len(iter_entries(p)) for _t, p in messages] == [4, 4, 2]
        # Order is preserved across chunks.
        seqs = [s for _t, p in messages for s, _e in iter_entries(p)]
        assert seqs == list(range(1, 11))

    def test_byte_flush_policy(self):
        events = [make_event(f"/a/f{i}") for i in range(6)]
        per_event = approx_wire_bytes(events[0])
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint="inproc://bytes-in",
            publish_endpoint="inproc://bytes-pub",
            api_endpoint="inproc://bytes-rep",
            batch_bytes=per_event * 2,
        )
        aggregator = Aggregator(context, config)
        subscriber = (
            context.sub().connect("inproc://bytes-pub").subscribe("events")
        )
        aggregator._handle_batch(events)
        messages = subscriber.recv_many(block=False)
        assert [len(iter_entries(p)) for _t, p in messages] == [2, 2, 2]

    def test_config_rejects_negative_flush_knobs(self):
        with pytest.raises(ValueError):
            AggregatorConfig(batch_events=-1)
        with pytest.raises(ValueError):
            AggregatorConfig(batch_bytes=-1)


# ---------------------------------------------------------------------------
# send_many / recv_many fabric extensions
# ---------------------------------------------------------------------------


class TestFabricBatching:
    def test_send_many_is_one_fabric_op_to_one_sink(self):
        context = Context()
        sink_a = context.pull().bind("inproc://many-a")
        sink_b = context.pull().bind("inproc://many-b")
        push = context.push().connect("inproc://many-a").connect(
            "inproc://many-b"
        )
        push.send_many(["x", "y", "z"])
        assert push.send_ops == 1
        assert push.sent == 3
        # The whole group landed on one sink, in order.
        assert sink_a.recv_many(block=False) == ["x", "y", "z"]
        with pytest.raises(WouldBlock):
            sink_b.recv_many(block=False)

    def test_send_many_larger_than_hwm_does_not_deadlock(self):
        context = Context()
        sink = context.pull(hwm=3).bind("inproc://wave")
        push = context.push(hwm=3).connect("inproc://wave")
        received = []

        def drain():
            while len(received) < 10:
                try:
                    received.extend(sink.recv_many(timeout=1.0))
                except WouldBlock:
                    break

        thread = threading.Thread(target=drain)
        thread.start()
        push.send_many(list(range(10)), timeout=5.0)
        thread.join()
        assert received == list(range(10))

    def test_recv_many_raises_would_block_when_empty(self):
        context = Context()
        sink = context.pull().bind("inproc://empty")
        with pytest.raises(WouldBlock):
            sink.recv_many(block=False)

    def test_send_many_within_hwm_is_all_or_nothing(self):
        context = Context()
        sink = context.pull(hwm=4).bind("inproc://atomic")
        push = context.push(hwm=4).connect("inproc://atomic")
        push.send(0)  # leave room for only 3
        with pytest.raises(WouldBlock):
            push.send_many(["a", "b", "c", "d"], timeout=0.05)
        # Nothing from the failed group was admitted or counted sent.
        assert push.sent == 1
        assert sink.recv_many(block=False) == [0]

    def test_send_many_accounts_for_partial_multiwave_delivery(self):
        # A group larger than the HWM moves in waves; when a later wave
        # times out, `sent` must reflect the messages the sink already
        # admitted (the old code reported zero, so re-reports
        # duplicated the delivered chunks).
        context = Context()
        sink = context.pull(hwm=3).bind("inproc://partial")
        push = context.push(hwm=3).connect("inproc://partial")
        with pytest.raises(WouldBlock) as excinfo:
            push.send_many(list(range(10)), timeout=0.05)
        assert push.sent == 3
        assert "3/10" in str(excinfo.value)
        assert sink.recv_many(block=False) == [0, 1, 2]

    def test_send_many_timeout_is_a_deadline_across_waves(self):
        import time as _time

        context = Context()
        sink = context.pull(hwm=1).bind("inproc://deadline")
        push = context.push(hwm=1).connect("inproc://deadline")
        stop = threading.Event()

        def slow_drain():
            # One item per 0.2s: each wave's wait succeeds well inside
            # a fresh 0.5s timeout, so the old per-wave timeout would
            # let all 8 waves through (~1.6s total).  A 0.5s *deadline*
            # must give up partway instead.
            while not stop.is_set():
                _time.sleep(0.2)
                try:
                    sink.recv_many(block=False)
                except WouldBlock:
                    pass

        thread = threading.Thread(target=slow_drain, daemon=True)
        thread.start()
        try:
            with pytest.raises(WouldBlock):
                push.send_many(list(range(8)), timeout=0.5)
            assert push.sent < 8
        finally:
            stop.set()
            thread.join()


# ---------------------------------------------------------------------------
# Property: batched ≡ per-event ingest
# ---------------------------------------------------------------------------


PATHS = st.sampled_from(
    ["/projects/a", "/projects/b", "/scratch/x", "/scratch/y", "/home/u"]
)


def build_aggregator(tag, topic_by_path, batch_events=0):
    context = Context()
    config = AggregatorConfig(
        inbound_endpoint=f"inproc://prop-in-{tag}",
        publish_endpoint=f"inproc://prop-pub-{tag}",
        api_endpoint=f"inproc://prop-rep-{tag}",
        topic_by_path=topic_by_path,
        batch_events=batch_events,
    )
    aggregator = Aggregator(context, config)
    subscriber = (
        context.sub()
        .connect(config.publish_endpoint)
        .subscribe(config.publish_topic)
    )
    return aggregator, subscriber


def published_entries(subscriber):
    """Publish order, global and per-topic: ([seq, ...], {topic: [seq, ...]})."""
    global_order = []
    per_topic = {}
    while True:
        try:
            messages = subscriber.recv_many(block=False)
        except WouldBlock:
            return global_order, per_topic
        for topic, payload in messages:
            seqs = [seq for seq, _event in iter_entries(payload)]
            global_order.extend(seqs)
            per_topic.setdefault(topic, []).extend(seqs)


class TestBatchedEqualsPerEvent:
    @settings(max_examples=30, deadline=None)
    @given(
        paths=st.lists(PATHS, min_size=0, max_size=40),
        topic_by_path=st.booleans(),
        batch_events=st.sampled_from([0, 1, 3]),
    )
    def test_same_store_contents_and_publish_order(
        self, paths, topic_by_path, batch_events
    ):
        events = [make_event(path) for path in paths]
        batched, batched_sub = build_aggregator(
            "b", topic_by_path, batch_events
        )
        single, single_sub = build_aggregator("s", topic_by_path)
        # Batched path: the whole list in one _handle_batch call.
        batched._handle_batch(list(events))
        # Per-event path: one call per event.
        for event in events:
            single._handle_batch([event])
        assert batched.store.since(0) == single.store.since(0)
        assert batched.events_stored == single.events_stored == len(events)
        # Identical sequence order on the wire — *globally*, not just
        # per topic: a broad-prefix subscriber matching every per-path
        # topic must see monotone seqs or its watermark dedup loses
        # events.
        batched_global, batched_topics = published_entries(batched_sub)
        single_global, single_topics = published_entries(single_sub)
        assert batched_global == single_global == list(
            range(1, len(events) + 1)
        )
        assert batched_topics == single_topics
        # And batching actually amortised the store lock.
        if events:
            assert batched.store.lock_acquisitions < \
                single.store.lock_acquisitions or len(events) == 1
