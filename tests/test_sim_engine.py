"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt
from repro.sim.engine import Condition


class TestTimeouts:
    def test_timeout_advances_clock(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(2.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run()
        assert fired == [2.5]

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, 3, "c"))
        env.process(proc(env, 1, "a"))
        env.process(proc(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_tiebreak(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc(env):
            value = yield env.timeout(1, value="payload")
            got.append(value)

        env.process(proc(env))
        env.run()
        assert got == ["payload"]


class TestRunModes:
    def test_run_until_time_stops_at_horizon(self):
        env = Environment()
        fired = []

        def proc(env):
            while True:
                yield env.timeout(1)
                fired.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert fired == [1, 2, 3]
        assert env.now == 3.5

    def test_run_until_event_returns_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(2)
            return 42

        process = env.process(worker(env))
        assert env.run(until=process) == 42
        assert env.now == 2

    def test_run_until_past_time_rejected(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_run_drains_when_no_until(self):
        env = Environment()

        def proc(env):
            yield env.timeout(7)

        env.process(proc(env))
        env.run()
        assert env.now == 7

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(4)
        assert env.peek() == 4

    def test_peek_empty_heap_is_inf(self):
        assert Environment().peek() == float("inf")


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1)
            return "done"

        process = env.process(worker(env))
        env.run()
        assert process.value == "done"

    def test_process_waits_on_another_process(self):
        env = Environment()
        log = []

        def child(env):
            yield env.timeout(2)
            return "child-result"

        def parent(env):
            result = yield env.process(child(env))
            log.append((env.now, result))

        env.process(parent(env))
        env.run()
        assert log == [(2, "child-result")]

    def test_exception_in_process_propagates(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("boom")

        env.process(bad(env))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_waiting_on_failed_process_raises_inside_waiter(self):
        env = Environment()
        caught = []

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(bad(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert caught == ["inner"]

    def test_yield_non_event_is_error(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(3)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(3, "wake up")]

    def test_interrupting_finished_process_is_error(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_is_alive_lifecycle(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive


class TestEvents:
    def test_manual_event_succeed(self):
        env = Environment()
        got = []

        def waiter(env, event):
            value = yield event
            got.append(value)

        def firer(env, event):
            yield env.timeout(5)
            event.succeed("fired")

        event = env.event()
        env.process(waiter(env, event))
        env.process(firer(env, event))
        env.run()
        assert got == ["fired"]

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_unhandled_failed_event_crashes_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("handled"))
        event.defuse()
        env.run()  # must not raise

    def test_all_of_collects_values(self):
        env = Environment()
        got = []

        def waiter(env):
            values = yield env.all_of([env.timeout(1, "a"), env.timeout(2, "b")])
            got.append((env.now, values))

        env.process(waiter(env))
        env.run()
        assert got == [(2, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        condition = Condition(env, [])
        assert condition.triggered

    def test_any_of_fires_on_first(self):
        env = Environment()
        got = []

        def waiter(env):
            winner = yield env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")])
            got.append((env.now, winner.value))

        env.process(waiter(env))
        env.run(until=10)
        assert got == [(1, "fast")]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def proc(env, name, period):
                for _ in range(5):
                    yield env.timeout(period)
                    trace.append((env.now, name))

            env.process(proc(env, "x", 1.5))
            env.process(proc(env, "y", 2.0))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
