"""Extra coverage for harness reporting and CLI experiment plumbing."""

import pytest

from repro.cli import main
from repro.harness.reporting import ascii_chart, comparison_table, render_table


class TestAsciiChartEdges:
    def test_single_point_series(self):
        text = ascii_chart({"only": [5.0]}, width=10, height=4)
        assert "only" in text
        assert "*" in text

    def test_all_zero_series(self):
        text = ascii_chart({"flat": [0.0, 0.0, 0.0]}, width=10, height=4)
        assert "flat" in text  # must not divide by zero

    def test_many_series_glyphs_cycle(self):
        series = {f"s{i}": [float(i)] for i in range(8)}
        text = ascii_chart(series, width=20, height=5)
        for name in series:
            assert name in text

    def test_y_label_and_peak(self):
        text = ascii_chart({"x": [10.0, 20.0]}, y_label="events", height=4)
        assert "events (peak = 20)" in text


class TestComparisonTableEdges:
    def test_zero_paper_value_gives_nan_ratio(self):
        text = comparison_table([("metric", 0.0, 5.0)])
        assert "nan" in text

    def test_custom_labels(self):
        text = comparison_table(
            [("m", 1.0, 1.0)], paper_label="expected", measured_label="got"
        )
        assert "expected" in text and "got" in text


class TestRenderTableEdges:
    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_non_string_cells_coerced(self):
        text = render_table(["n"], [(42,), (3.14,)])
        assert "42" in text and "3.14" in text


class TestCliExperimentsRun:
    def test_run_throughput_with_short_duration(self, capsys):
        assert main(["experiments", "run", "throughput",
                     "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "AWS" in out and "Iota" in out
        assert "bottleneck stage: process" in out

    def test_run_table3_short(self, capsys):
        assert main(["experiments", "run", "table3", "--duration", "2"]) == 0
        assert "Collector" in capsys.readouterr().out

    def test_run_figure3(self, capsys):
        assert main(["experiments", "run", "figure3"]) == 0
        assert "Aurora" in capsys.readouterr().out
