"""Tests for workload generators, NERSC dumps and traces."""

import pytest

from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock
from repro.workloads import (
    DumpDiffer,
    EventGenerator,
    FileSystemDumpModel,
    OpLatencies,
    ScalingAnalysis,
    TraceOp,
    TraceReplayer,
    synthetic_trace,
)
from repro.workloads.nersc import EIGHT_HOURS, SECONDS_PER_DAY


class TestOpLatencies:
    def test_from_rates(self):
        latencies = OpLatencies.from_rates(100, 200, 400)
        assert latencies.create == pytest.approx(0.01)
        assert latencies.modify == pytest.approx(0.005)
        assert latencies.delete == pytest.approx(0.0025)


class TestEventGenerator:
    def test_calibrated_rates_match_latencies(self):
        clock = ManualClock()
        fs = LustreFilesystem(clock=clock)
        generator = EventGenerator(
            fs, latencies=OpLatencies.from_rates(352, 534, 832)
        )
        report = generator.generate(n_files=500)
        assert report.created_per_second == pytest.approx(352, rel=0.01)
        assert report.modified_per_second == pytest.approx(534, rel=0.01)
        assert report.deleted_per_second == pytest.approx(832, rel=0.01)

    def test_each_phase_generates_one_record_per_file(self):
        clock = ManualClock()
        fs = LustreFilesystem(clock=clock)
        generator = EventGenerator(
            fs, latencies=OpLatencies.from_rates(10, 10, 10)
        )
        report = generator.generate(n_files=50)
        assert report.records_created == 50
        assert report.records_modified == 50
        assert report.records_deleted == 50
        assert report.total_records == 150

    def test_calibrated_mode_advances_virtual_clock(self):
        clock = ManualClock()
        fs = LustreFilesystem(clock=clock)
        generator = EventGenerator(
            fs, latencies=OpLatencies(0.001, 0.001, 0.001)
        )
        generator.generate(n_files=100)
        assert clock.now() == pytest.approx(0.3)

    def test_calibrated_mode_requires_manual_clock(self):
        fs = LustreFilesystem()  # wall clock
        with pytest.raises(ValueError):
            EventGenerator(fs, latencies=OpLatencies(1, 1, 1))

    def test_wall_clock_mode_reports_positive_rates(self):
        fs = LustreFilesystem()
        generator = EventGenerator(fs)
        report = generator.generate(n_files=200)
        assert report.created_per_second > 0
        assert report.total_events_per_second > 0

    def test_mixed_workload_record_count(self):
        clock = ManualClock()
        fs = LustreFilesystem(clock=clock)
        generator = EventGenerator(fs, seed=1)
        records = generator.generate_mixed(n_ops=300, n_directories=8)
        assert records >= 300  # at least one record per op

    def test_mixed_workload_leaves_consistent_namespace(self):
        fs = LustreFilesystem(clock=ManualClock())
        generator = EventGenerator(fs, seed=2)
        generator.generate_mixed(n_ops=200, n_directories=4)
        for _dirpath, _dirs, files in fs.walk("/gen"):
            for name in files:
                assert name.startswith("m")

    def test_invalid_weights_rejected(self):
        fs = LustreFilesystem(clock=ManualClock())
        generator = EventGenerator(fs)
        with pytest.raises(ValueError):
            generator.generate_mixed(10, create_weight=-1)


class TestNerscDumps:
    def test_series_length(self):
        model = FileSystemDumpModel(base_files=1000, seed=1)
        series = model.generate_series(days=10)
        assert len(series) == 10

    def test_diff_counts_created_and_modified(self):
        model = FileSystemDumpModel(base_files=5000, seed=3)
        series = model.generate_series(days=5)
        diffs = DumpDiffer.analyze(series)
        assert len(diffs) == 4
        assert all(d.created >= 0 and d.modified >= 0 for d in diffs)
        assert any(d.total_differences > 0 for d in diffs)

    def test_diff_manual_example(self):
        from repro.workloads.nersc import DailyDump

        yesterday = DailyDump(0, {1: 0.0, 2: 0.0, 3: 0.0})
        today = DailyDump(1, {1: 0.0, 2: 1.0, 4: 1.0})
        diff = DumpDiffer.diff(yesterday, today)
        assert diff.created == 1   # file 4
        assert diff.modified == 1  # file 2
        assert diff.deleted == 1   # file 3

    def test_short_lived_files_invisible(self):
        """Created-and-deleted-within-a-day files never appear in dumps
        — the paper's stated limitation of dump differencing."""
        from repro.workloads.nersc import DailyDump

        yesterday = DailyDump(0, {})
        today = DailyDump(1, {})  # churned file came and went
        assert DumpDiffer.diff(yesterday, today).total_differences == 0

    def test_reproducible_given_seed(self):
        a = FileSystemDumpModel(base_files=2000, seed=9).generate_series(8)
        b = FileSystemDumpModel(base_files=2000, seed=9).generate_series(8)
        diffs_a = DumpDiffer.analyze(a)
        diffs_b = DumpDiffer.analyze(b)
        assert [d.total_differences for d in diffs_a] == [
            d.total_differences for d in diffs_b
        ]

    def test_population_grows_with_creates(self):
        model = FileSystemDumpModel(base_files=1000, churn_fraction=0.0, seed=4)
        series = model.generate_series(days=10)
        assert series.dumps[-1].file_count > series.dumps[0].file_count


class TestScalingAnalysis:
    def test_paper_arithmetic(self):
        analysis = ScalingAnalysis(peak_diffs_per_day=3_600_000)
        assert analysis.events_per_second_24h == pytest.approx(
            3_600_000 / SECONDS_PER_DAY
        )
        assert analysis.events_per_second_24h == pytest.approx(41.7, abs=0.1)
        assert analysis.events_per_second_8h == pytest.approx(
            3_600_000 / EIGHT_HOURS
        )
        assert analysis.events_per_second_8h == pytest.approx(125, abs=1)

    def test_aurora_extrapolation_factor(self):
        analysis = ScalingAnalysis(peak_diffs_per_day=3_600_000)
        assert analysis.aurora_factor == pytest.approx(21.1, abs=0.1)
        # 8h worst case x capacity ratio ~= paper's 3,178 events/s
        assert analysis.extrapolate() == pytest.approx(2641, rel=0.01)

    def test_extrapolation_linear_in_capacity(self):
        analysis = ScalingAnalysis(peak_diffs_per_day=1_000_000)
        assert analysis.extrapolate(14.2) == pytest.approx(
            2 * analysis.events_per_second_8h
        )


class TestTraces:
    def test_trace_op_roundtrip(self):
        op = TraceOp("rename", "/a/b", path2="/a/c", size=0)
        assert TraceOp.from_line(op.to_line()) == op

    def test_trace_op_roundtrip_with_size(self):
        op = TraceOp("create", "/a/b", size=4096)
        assert TraceOp.from_line(op.to_line()) == op

    def test_synthetic_trace_replays_cleanly_on_lustre(self):
        fs = LustreFilesystem(clock=ManualClock())
        replayer = TraceReplayer(fs)
        ops = list(synthetic_trace(200, seed=5))
        applied = replayer.replay(ops)
        assert applied == len(ops)
        assert replayer.skipped == 0

    def test_synthetic_trace_replays_on_memfs(self):
        from repro.fs.memfs import MemoryFilesystem

        fs = MemoryFilesystem(clock=ManualClock())
        replayer = TraceReplayer(fs)
        ops = list(synthetic_trace(150, seed=6))
        assert replayer.replay(ops) == len(ops)

    def test_same_seed_same_trace(self):
        a = [op.to_line() for op in synthetic_trace(100, seed=7)]
        b = [op.to_line() for op in synthetic_trace(100, seed=7)]
        assert a == b

    def test_replay_produces_identical_changelog_streams(self):
        """The same trace replayed on two Lustre instances yields the
        same record-type sequence — the basis for monitor/baseline A/B
        comparisons."""
        ops = list(synthetic_trace(100, seed=8))

        def record_types(fs):
            replayer = TraceReplayer(fs)
            replayer.replay(ops)
            return [
                record.rec_type
                for changelog in fs.changelogs()
                for record in changelog._records
            ]

        first = record_types(LustreFilesystem(clock=ManualClock()))
        second = record_types(LustreFilesystem(clock=ManualClock()))
        assert first == second

    def test_unknown_op_rejected(self):
        fs = LustreFilesystem(clock=ManualClock())
        replayer = TraceReplayer(fs)
        with pytest.raises(ValueError):
            replayer._apply(TraceOp("explode", "/x"))
