"""Tests for the Robinhood, polling and inotify baselines."""

import pytest

from repro.baselines import (
    InotifyMonitor,
    PollingMonitor,
    RobinhoodCollector,
    RobinhoodPolicy,
)
from repro.core.events import EventType
from repro.fs.memfs import MemoryFilesystem
from repro.lustre import DnePolicy, LustreFilesystem
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


class TestRobinhood:
    def _fs(self, clock, **kwargs):
        fs = LustreFilesystem(clock=clock, **kwargs)
        collector = RobinhoodCollector(fs, clock=clock)
        return fs, collector

    def test_scan_builds_database(self, clock):
        fs, collector = self._fs(clock)
        fs.makedirs("/p")
        fs.create("/p/a.dat")
        fs.create("/p/b.dat")
        collector.scan_once()
        assert len(collector.database) == 3  # dir + 2 files
        assert sorted(collector.find("*.dat")) == ["/p/a.dat", "/p/b.dat"]

    def test_scan_is_incremental(self, clock):
        fs, collector = self._fs(clock)
        fs.create("/a")
        assert collector.scan_once() == 1
        assert collector.scan_once() == 0
        fs.create("/b")
        assert collector.scan_once() == 1

    def test_deletions_remove_entries(self, clock):
        fs, collector = self._fs(clock)
        fs.create("/a")
        collector.scan_once()
        fs.unlink("/a")
        collector.scan_once()
        assert collector.database == {}

    def test_sequential_scan_covers_all_mdts(self, clock):
        fs, collector = self._fs(
            clock, num_mds=3, dne_policy=DnePolicy.ROUND_ROBIN
        )
        for index in range(6):
            fs.mkdir(f"/d{index}")
            fs.create(f"/d{index}/f")
        ingested = collector.scan_once()
        assert ingested == 12
        assert len(collector.find("f")) == 6

    def test_policy_matches_by_age(self, clock):
        fs, collector = self._fs(clock)
        fs.create("/old.tmp")
        clock.advance(100)
        fs.create("/new.tmp")
        collector.scan_once()
        run = collector.run_policy(
            RobinhoodPolicy(name="purge", name_pattern="*.tmp", older_than=50)
        )
        assert run.matched == 1

    def test_policy_action_invoked(self, clock):
        fs, collector = self._fs(clock)
        fs.create("/x.tmp")
        collector.scan_once()
        clock.advance(10)
        purged = []
        run = collector.run_policy(
            RobinhoodPolicy(
                name="purge", name_pattern="*.tmp", older_than=1,
                action=lambda row: purged.append(row.path),
            )
        )
        assert run.acted == 1
        assert purged == ["/x.tmp"]

    def test_usage_report_counts_by_top_dir(self, clock):
        fs, collector = self._fs(clock)
        fs.makedirs("/proj1")
        fs.makedirs("/proj2")
        fs.create("/proj1/a")
        fs.create("/proj1/b")
        fs.create("/proj2/c")
        collector.scan_once()
        report = collector.usage_report()
        assert report["/proj1"] == 2
        assert report["/proj2"] == 1

    def test_modification_updates_last_event(self, clock):
        fs, collector = self._fs(clock)
        fs.create("/f")
        collector.scan_once()
        clock.advance(100)
        fs.write("/f", 10)
        collector.scan_once()
        row = next(iter(collector.database.values()))
        assert row.last_event == "11CLOSE"
        assert row.last_event_time == 100
        assert row.size_events == 1


class TestPollingMonitor:
    def test_first_poll_reports_nothing(self, clock):
        fs = MemoryFilesystem(clock=clock)
        fs.create("/pre-existing")
        monitor = PollingMonitor(fs, clock=clock)
        diff = monitor.poll()
        assert diff.events == []

    def test_detects_creation_and_deletion(self, clock):
        fs = MemoryFilesystem(clock=clock)
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        fs.create("/new")
        diff = monitor.poll()
        assert diff.created == 1
        fs.unlink("/new")
        diff = monitor.poll()
        assert diff.deleted == 1

    def test_detects_modification_via_mtime(self, clock):
        fs = MemoryFilesystem(clock=clock)
        fs.create("/f", b"a")
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        clock.advance(1)
        fs.write("/f", b"bb")
        diff = monitor.poll()
        assert diff.modified == 1
        assert diff.events[0].event_type is EventType.MODIFIED

    def test_misses_short_lived_files(self, clock):
        """The fundamental polling blindspot the paper notes."""
        fs = MemoryFilesystem(clock=clock)
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        fs.create("/ephemeral")
        fs.unlink("/ephemeral")
        diff = monitor.poll()
        assert diff.events == []

    def test_collapses_multiple_modifications(self, clock):
        fs = MemoryFilesystem(clock=clock)
        fs.create("/f")
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        for _ in range(5):
            clock.advance(1)
            fs.write("/f", b"x")
        diff = monitor.poll()
        assert diff.modified == 1  # five writes look like one

    def test_crawl_cost_scales_with_namespace_not_activity(self, clock):
        fs = MemoryFilesystem(clock=clock)
        for index in range(50):
            fs.create(f"/f{index}")
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        quiet_poll = monitor.poll()  # zero activity
        assert quiet_poll.stat_calls == 50
        assert monitor.total_stat_calls == 100

    def test_works_on_lustre_model_too(self, clock):
        fs = LustreFilesystem(clock=clock)
        monitor = PollingMonitor(fs, clock=clock)
        monitor.poll()
        fs.create("/f", size=10)
        diff = monitor.poll()
        assert diff.created == 1


class TestInotifyMonitorBaseline:
    def test_delivers_normalized_events(self, clock):
        fs = MemoryFilesystem(clock=clock)
        fs.makedirs("/w")
        events = []
        monitor = InotifyMonitor(fs, events.append)
        monitor.watch("/w")
        fs.create("/w/f")
        monitor.drain()
        assert events[0].event_type is EventType.CREATED
        assert events[0].source == "inotify"

    def test_setup_cost_counts_crawled_directories(self, clock):
        fs = MemoryFilesystem(clock=clock)
        for index in range(10):
            fs.makedirs(f"/tree/d{index}")
        monitor = InotifyMonitor(fs, lambda event: None)
        monitor.watch("/tree")
        assert monitor.setup_directories_crawled == 11
        assert monitor.watch_count == 11

    def test_kernel_memory_grows_with_watches(self, clock):
        fs = MemoryFilesystem(clock=clock)
        for index in range(4):
            fs.makedirs(f"/t/d{index}")
        monitor = InotifyMonitor(fs, lambda event: None)
        monitor.watch("/t")
        assert monitor.kernel_memory_bytes == 5 * 1024

    def test_paper_memory_projection(self):
        assert InotifyMonitor.memory_for_directories(524_288) == 512 * 1024 * 1024

    def test_overflow_counted_as_loss(self, clock):
        fs = MemoryFilesystem(clock=clock)
        fs.makedirs("/w")
        monitor = InotifyMonitor(fs, lambda event: None)
        monitor.observer.inotify.max_queued_events = 5
        monitor.watch("/w")
        for index in range(20):
            fs.create(f"/w/f{index}")
        monitor.drain()
        assert monitor.queue_drops > 0
        assert monitor.events_lost >= 1
