"""Additional property-based tests on fabric, DES and utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WouldBlock
from repro.msgq import Context
from repro.sim import Environment, Store
from repro.util.clock import ManualClock
from repro.util.tokens import TokenBucket


class TestPubSubProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        messages=st.lists(
            st.tuples(st.sampled_from(["a.", "b.", "c."]), st.integers()),
            max_size=40,
        ),
        prefix=st.sampled_from(["a.", "b.", ""]),
    )
    def test_subscriber_sees_exactly_its_prefix_in_order(self, messages, prefix):
        context = Context()
        publisher = context.pub().bind("inproc://p")
        subscriber = context.sub().connect("inproc://p").subscribe(prefix)
        for topic, payload in messages:
            publisher.send(topic, payload)
        received = []
        while True:
            try:
                received.append(subscriber.recv(block=False))
            except WouldBlock:
                break
        expected = [
            (topic, payload)
            for topic, payload in messages
            if topic.startswith(prefix)
        ]
        assert received == expected

    @settings(max_examples=30, deadline=None)
    @given(n_messages=st.integers(0, 50), hwm=st.integers(1, 20))
    def test_drops_plus_pending_account_for_everything(self, n_messages, hwm):
        context = Context()
        publisher = context.pub().bind("inproc://p")
        subscriber = context.sub(hwm=hwm).connect("inproc://p").subscribe("")
        for index in range(n_messages):
            publisher.send("t", index)
        assert subscriber.pending + subscriber.dropped == n_messages
        # What survived is the prefix of the stream, in order.
        survived = []
        while True:
            try:
                survived.append(subscriber.recv(block=False)[1])
            except WouldBlock:
                break
        assert survived == list(range(len(survived)))


class TestPushPullProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_messages=st.integers(0, 60),
        n_sinks=st.integers(1, 4),
    )
    def test_round_robin_partitions_without_loss(self, n_messages, n_sinks):
        context = Context()
        pulls = [
            context.pull().bind(f"inproc://s{i}") for i in range(n_sinks)
        ]
        push = context.push()
        for index in range(n_sinks):
            push.connect(f"inproc://s{index}")
        for value in range(n_messages):
            push.send(value)
        received = []
        for pull in pulls:
            while True:
                try:
                    received.append(pull.recv(block=False))
                except WouldBlock:
                    break
        assert sorted(received) == list(range(n_messages))
        # Fair distribution: sink loads differ by at most one.
        loads = [pull.received for pull in pulls]
        assert max(loads) - min(loads) <= 1


class TestDesStoreProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        puts=st.lists(st.integers(), max_size=30),
        capacity=st.integers(1, 8),
    )
    def test_fifo_order_preserved_through_bounded_store(self, puts, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        got = []

        def producer(env):
            for item in puts:
                yield store.put(item)

        def consumer(env):
            for _ in range(len(puts)):
                item = yield store.get()
                got.append(item)
                yield env.timeout(1)  # slow consumer forces backpressure

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == puts


class TestTokenBucketProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        takes=st.lists(
            st.tuples(st.floats(0.01, 5.0), st.floats(0.0, 2.0)),
            max_size=30,
        ),
        rate=st.floats(0.5, 20.0),
        burst=st.floats(1.0, 10.0),
    )
    def test_consumption_never_exceeds_accrual(self, takes, rate, burst):
        clock = ManualClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        consumed = 0.0
        elapsed = 0.0
        for amount, advance in takes:
            clock.advance(advance)
            elapsed += advance
            if amount <= burst and bucket.take(amount):
                consumed += amount
        # Total consumption is bounded by initial burst + accrual.
        assert consumed <= burst + rate * elapsed + 1e-6
        # And tokens remaining are never negative or above burst.
        assert 0.0 <= bucket.tokens <= burst + 1e-9
