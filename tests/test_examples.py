"""Every example must run clean — they are executable documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{example.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "OK" in completed.stdout  # each example self-verifies


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "beamline_pipeline",
        "site_purge",
        "monitor_fault_tolerance",
        "capacity_planning",
        "facility_rules",
    } <= names
