"""Tests for changelog masks, job ids and collector-side filtering."""

import pytest

from repro.core import CollectorConfig, LustreMonitor, MonitorConfig
from repro.core.events import EventType
from repro.lustre import LustreFilesystem, RecordType
from repro.lustre.changelog import ChangeLog
from repro.lustre.fid import Fid
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    fs = LustreFilesystem(clock=ManualClock())
    fs.makedirs("/d")
    return fs


class TestChangelogMask:
    def test_mask_suppresses_unlisted_types(self, fs):
        changelog = fs.changelogs()[0]
        user = changelog.register_user()
        changelog.set_mask({RecordType.CREAT, RecordType.UNLNK})
        fs.create("/d/f")          # CREAT -> logged
        fs.write("/d/f", 10)       # CLOSE -> suppressed
        fs.setattr("/d/f", mode=0o600)  # SATTR -> suppressed
        fs.unlink("/d/f")          # UNLNK -> logged
        types = [r.rec_type for r in changelog.read(user)]
        assert types == [RecordType.CREAT, RecordType.UNLNK]
        assert changelog.mask_suppressed == 2

    def test_reset_mask_restores_everything(self, fs):
        changelog = fs.changelogs()[0]
        user = changelog.register_user()
        changelog.set_mask({RecordType.CREAT})
        changelog.reset_mask()
        fs.create("/d/f")
        fs.write("/d/f", 10)
        assert len(changelog.read(user)) == 2

    def test_mark_always_allowed(self):
        changelog = ChangeLog(0, clock=ManualClock())
        changelog.set_mask({RecordType.CREAT})
        assert RecordType.MARK in changelog.mask

    def test_suppressed_append_returns_none(self):
        changelog = ChangeLog(0, clock=ManualClock())
        changelog.set_mask({RecordType.CREAT})
        record = changelog.append(
            RecordType.SATTR, Fid(1, 1), Fid(1, 2), "f"
        )
        assert record is None
        assert changelog.total_appended == 0

    def test_mask_reduces_monitor_traffic(self, fs):
        for changelog in fs.changelogs():
            changelog.set_mask({RecordType.CREAT, RecordType.UNLNK,
                                RecordType.MKDIR, RecordType.RMDIR})
        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev.event_type))
        fs.create("/d/f")
        fs.write("/d/f", 100)  # suppressed at the source
        fs.unlink("/d/f")
        monitor.drain()
        assert seen == [EventType.CREATED, EventType.DELETED]


class TestJobId:
    def test_job_context_tags_records(self, fs):
        changelog = fs.changelogs()[0]
        user = changelog.register_user()
        with fs.job("train.42"):
            fs.create("/d/model.ckpt")
        fs.create("/d/untagged")
        records = changelog.read(user)
        assert records[0].jobid == "train.42"
        assert records[1].jobid is None

    def test_job_contexts_nest_and_restore(self, fs):
        changelog = fs.changelogs()[0]
        user = changelog.register_user()
        with fs.job("outer"):
            fs.create("/d/a")
            with fs.job("inner"):
                fs.create("/d/b")
            fs.create("/d/c")
        jobids = [r.jobid for r in changelog.read(user)]
        assert jobids == ["outer", "inner", "outer"]

    def test_set_job_direct(self, fs):
        changelog = fs.changelogs()[0]
        user = changelog.register_user()
        fs.set_job("batch.7")
        fs.create("/d/x")
        fs.set_job(None)
        fs.create("/d/y")
        jobids = [r.jobid for r in changelog.read(user)]
        assert jobids == ["batch.7", None]

    def test_jobid_flows_to_file_events(self, fs):
        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        with fs.job("sim.99"):
            fs.create("/d/out.h5")
        monitor.drain()
        assert seen[0].jobid == "sim.99"

    def test_jobid_survives_event_serialisation(self, fs):
        from repro.core.events import FileEvent

        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        with fs.job("j.1"):
            fs.create("/d/f")
        monitor.drain()
        roundtripped = FileEvent.from_dict(seen[0].to_dict())
        assert roundtripped.jobid == "j.1"


class TestCollectorEventFilter:
    def _monitor(self, fs, event_types):
        return LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(event_types=event_types)
            ),
        )

    def test_only_configured_types_reported(self, fs):
        monitor = self._monitor(
            fs, frozenset({EventType.CREATED, EventType.DELETED})
        )
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev.event_type))
        fs.create("/d/f")
        fs.write("/d/f", 10)
        fs.setattr("/d/f", mode=0o600)
        fs.unlink("/d/f")
        monitor.drain()
        assert seen == [EventType.CREATED, EventType.DELETED]
        assert monitor.collectors[0].events_filtered == 2

    def test_filtered_batches_still_purge_changelog(self, fs):
        monitor = self._monitor(fs, frozenset({EventType.DELETED}))
        fs.create("/d/f")
        fs.write("/d/f", 10)
        monitor.drain()
        assert all(cl.backlog == 0 for cl in fs.changelogs())

    def test_empty_filter_rejected(self):
        with pytest.raises(ValueError):
            CollectorConfig(event_types=frozenset())


class TestJobIdTextFormat:
    def test_format_includes_j_field(self, fs):
        with fs.job("train.42"):
            fs.create("/d/model.ckpt")
        line = list(fs.changelogs()[0].dump())[-1]
        assert " j=train.42 " in line

    def test_format_omits_j_when_absent(self, fs):
        fs.create("/d/plain")
        line = list(fs.changelogs()[0].dump())[-1]
        assert " j=" not in line

    def test_parse_roundtrip_with_jobid(self, fs):
        from repro.lustre.changelog import ChangelogRecord

        with fs.job("sim.7"):
            fs.create("/d/out.h5")
        line = list(fs.changelogs()[0].dump())[-1]
        parsed = ChangelogRecord.parse(line)
        assert parsed.jobid == "sim.7"
        assert parsed.name == "out.h5"

    def test_parse_roundtrip_without_jobid(self, fs):
        from repro.lustre.changelog import ChangelogRecord

        fs.create("/d/plain.txt")
        line = list(fs.changelogs()[0].dump())[-1]
        parsed = ChangelogRecord.parse(line)
        assert parsed.jobid is None
        assert parsed.name == "plain.txt"
