"""Restart/recovery integration tests across the whole stack.

The paper's fault-tolerance story has three layers; these tests kill
and resurrect each one:

* a Collector restart must not lose or duplicate ChangeLog records
  (purge pointers live in the MDT);
* an Aggregator restart with a persisted catalog must keep history and
  sequence numbering so consumers catch up seamlessly;
* a consumer restart recovers through the historic API.
"""

import pytest

from repro.core import (
    Aggregator,
    AggregatorConfig,
    Collector,
    CollectorConfig,
    LustreMonitor,
    MonitorConfig,
)
from repro.core.collector import CallbackSink
from repro.core.store import EventStore
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


class TestCollectorRestart:
    def test_new_collector_resumes_from_purge_pointer(self):
        """Records cleared by the first collector must not reappear;
        records it never cleared must."""
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        received = []
        sink = CallbackSink(received.extend)
        first = Collector(
            "mds0", fs, fs.cluster.servers[0], sink,
            CollectorConfig(read_batch=3),
        )
        for index in range(5):
            fs.create(f"/d/f{index}")
        first.poll_once()  # reads+clears f0..f2
        assert len(received) == 3
        # Crash: the collector dies WITHOUT deregistering; a replacement
        # cannot reuse its changelog user, so the operator deregisters
        # the old user and registers anew — records not yet cleared by
        # anyone are retained for the new reader only if another user
        # still holds them.  The supported crash-safe pattern is
        # re-registering the SAME user id, which our model exposes as
        # keeping the Collector's user: simulate by continuing with a
        # second poll from a rebuilt collector object sharing users.
        second = Collector.__new__(Collector)
        second.__dict__.update(first.__dict__)
        second.poll_once()
        assert [e.name for e in received] == [f"f{i}" for i in range(5)]

    def test_crash_between_report_and_clear_redelivers(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        received = []

        class CrashAfterSend:
            def __init__(self):
                self.crash_next = True

            def send(self, payload):
                received.extend(payload)
                if self.crash_next:
                    self.crash_next = False
                    raise ConnectionError("crash after send, before clear")

        collector = Collector(
            "mds0", fs, fs.cluster.servers[0], CrashAfterSend(),
            CollectorConfig(),
        )
        fs.create("/d/f")
        collector.poll_once()  # sends, then "crashes" before clearing
        collector.poll_once()  # redelivers
        names = [e.name for e in received]
        assert names == ["f", "f"]  # at-least-once: duplicate, never loss


class TestAggregatorRestart:
    def test_restart_with_persisted_catalog(self, tmp_path):
        from repro.msgq import Context

        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(fs)
        for index in range(10):
            fs.create(f"/d/f{index}")
        monitor.drain()
        catalog = str(tmp_path / "catalog.jsonl")
        monitor.aggregator.store.save(catalog)
        monitor.shutdown()

        # A fresh aggregator (new context, as after a host restart)
        # resumes from the persisted catalog.
        context = Context()
        restored = Aggregator(
            context, AggregatorConfig(), store=EventStore.load(catalog)
        )
        assert restored.store.last_seq == 10

        # A consumer that had seen seq 6 catches up with exactly 7..10.
        from repro.core.consumer import Consumer

        seen = []
        consumer = Consumer(context, lambda seq, ev: seen.append(seq))
        consumer.last_seq = 6
        consumer.catch_up(api_server=restored)
        assert seen == [7, 8, 9, 10]

    def test_sequence_numbers_continue_after_restart(self, tmp_path):
        from repro.core.events import EventType, FileEvent

        store = EventStore()
        for index in range(4):
            store.append(
                FileEvent(
                    event_type=EventType.CREATED, path=f"/f{index}",
                    is_dir=False, timestamp=0.0, name=f"f{index}",
                    source="lustre",
                )
            )
        path = str(tmp_path / "c.jsonl")
        store.save(path)
        restored = EventStore.load(path)
        next_seq = restored.append(
            FileEvent(
                event_type=EventType.CREATED, path="/post", is_dir=False,
                timestamp=0.0, name="post", source="lustre",
            )
        )
        assert next_seq == 5  # no reuse of 1..4


class TestConsumerRestart:
    def test_consumer_rebuilds_state_via_catch_up(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(fs)
        first_life = []
        consumer = monitor.subscribe(lambda seq, ev: first_life.append(seq))
        fs.create("/d/a")
        monitor.drain()
        checkpoint = consumer.last_seq
        consumer.close()
        monitor.consumers.remove(consumer)

        # More activity while the consumer is dead.
        fs.create("/d/b")
        fs.create("/d/c")
        monitor.drain()

        second_life = []
        replacement = monitor.subscribe(
            lambda seq, ev: second_life.append(seq), name="reborn"
        )
        replacement.last_seq = checkpoint  # restored from its own state
        replacement.catch_up(api_server=monitor.aggregator)
        assert second_life == [2, 3]
        # And the live stream continues without gaps or duplicates.
        fs.create("/d/d")
        monitor.drain()
        assert second_life == [2, 3, 4]
