"""Tests for the deduping consumer and the trace CLI."""

import pytest

from repro.cli import main
from repro.core import DedupingConsumer, LustreMonitor
from repro.core.collector import Collector, CollectorConfig
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


class TestDedupingConsumer:
    def test_suppresses_collector_redelivery(self):
        """Simulate a crash between report and clear: the same records
        reach the aggregator twice (with fresh sequence numbers); a
        DedupingConsumer delivers each record once."""
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(fs)
        seen = []
        consumer = DedupingConsumer(
            monitor.context,
            lambda seq, ev: seen.append(ev.record_index),
            config=monitor.config.aggregator,
        )
        monitor.consumers.append(consumer)

        class CrashOnceSink:
            def __init__(self, inner):
                self.inner = inner
                self.crash = True

            def send(self, payload):
                self.inner.send(payload)
                if self.crash:
                    self.crash = False
                    raise ConnectionError("crash after send")

        collector = monitor.collectors[0]
        collector.sink = CrashOnceSink(collector.sink)
        for index in range(5):
            fs.create(f"/d/f{index}")
        monitor.drain()
        # Record 1 is the pre-registration mkdir; creates are 2..6.
        assert seen == [2, 3, 4, 5, 6]
        assert consumer.redeliveries_suppressed == 5
        # The sequence cursor still advanced past the duplicates.
        assert consumer.last_seq == 10

    def test_passes_local_events_through(self):
        from repro.core.events import EventType, FileEvent
        from repro.msgq import Context
        from repro.core.aggregator import Aggregator, AggregatorConfig

        context = Context()
        aggregator = Aggregator(context)
        seen = []
        consumer = DedupingConsumer(context, lambda seq, ev: seen.append(seq))
        local_event = FileEvent(
            event_type=EventType.CREATED, path="/x", is_dir=False,
            timestamp=0.0, name="x", source="inotify",
        )
        push = context.push().connect(AggregatorConfig().inbound_endpoint)
        push.send([local_event, local_event])
        aggregator.pump_once()
        consumer.poll_once()
        assert seen == [1, 2]  # no record identity -> nothing suppressed
        assert consumer.redeliveries_suppressed == 0

    def test_per_mdt_high_water_marks_independent(self):
        from repro.lustre import DnePolicy

        fs = LustreFilesystem(
            clock=ManualClock(), num_mds=2, dne_policy=DnePolicy.ROUND_ROBIN
        )
        monitor = LustreMonitor(fs)
        seen = []
        consumer = DedupingConsumer(
            monitor.context,
            lambda seq, ev: seen.append((ev.mdt_index, ev.record_index)),
            config=monitor.config.aggregator,
        )
        monitor.consumers.append(consumer)
        fs.mkdir("/a")  # mdt0
        fs.mkdir("/b")  # mdt1
        fs.create("/a/f")
        fs.create("/b/g")
        monitor.drain()
        # Record index 1 appears for both MDTs; neither is suppressed.
        indices = sorted(seen)
        assert (0, 1) in indices and (1, 1) in indices
        assert consumer.redeliveries_suppressed == 0


class TestTraceCli:
    def test_generate_then_replay(self, capsys, tmp_path):
        trace_file = str(tmp_path / "ops.trace")
        assert main([
            "trace", "generate", "--ops", "200", "--seed", "3",
            "-o", trace_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["trace", "replay", trace_file, "--num-mds", "2"]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "(0 skipped)" in out
        assert "changelog records generated" in out

    def test_generated_trace_is_seed_stable(self, tmp_path):
        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        main(["trace", "generate", "--ops", "50", "--seed", "9", "-o", str(a)])
        main(["trace", "generate", "--ops", "50", "--seed", "9", "-o", str(b)])
        assert a.read_text() == b.read_text()
