"""Tests for the per-MDT ChangeLog."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChangelogError, ChangelogUserError
from repro.lustre.changelog import (
    ChangeLog,
    ChangelogFlag,
    ChangelogRecord,
    RecordType,
)
from repro.lustre.fid import Fid
from repro.util.clock import ManualClock

TARGET = Fid(0x200000402, 0xA046)
PARENT = Fid(0x200000007, 0x1)


def make_log(**kwargs):
    return ChangeLog(0, clock=ManualClock(1_504_728_937.1138), **kwargs)


class TestRecordFormat:
    def test_mnemonics_match_lustre(self):
        assert RecordType.CREAT.mnemonic == "01CREAT"
        assert RecordType.MKDIR.mnemonic == "02MKDIR"
        assert RecordType.UNLNK.mnemonic == "06UNLNK"
        assert RecordType.SATTR.mnemonic == "14SATTR"

    def test_from_mnemonic_roundtrip(self):
        for rec_type in RecordType:
            assert RecordType.from_mnemonic(rec_type.mnemonic) is rec_type

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ChangelogError):
            RecordType.from_mnemonic("99NOPE")

    def test_format_matches_table1_layout(self):
        record = ChangelogRecord(
            13106, RecordType.CREAT, 1_504_728_937.1138,
            ChangelogFlag.NONE, TARGET, PARENT, "data1.txt",
        )
        fields = record.format().split()
        assert fields[0] == "13106"
        assert fields[1] == "01CREAT"
        assert fields[3] == "2017.09.06"
        assert fields[4] == "0x0"
        assert fields[5] == "t=[0x200000402:0xa046:0x0]"
        assert fields[6] == "p=[0x200000007:0x1:0x0]"
        assert fields[7] == "data1.txt"

    def test_unlink_last_flag_formats_as_0x1(self):
        record = ChangelogRecord(
            1, RecordType.UNLNK, 0.0, ChangelogFlag.UNLINK_LAST,
            TARGET, PARENT, "f",
        )
        assert record.format().split()[4] == "0x1"

    def test_parse_roundtrip(self):
        record = ChangelogRecord(
            42, RecordType.MKDIR, 1_504_728_937.5,
            ChangelogFlag.NONE, TARGET, PARENT, "DataDir",
        )
        parsed = ChangelogRecord.parse(record.format())
        assert parsed.index == 42
        assert parsed.rec_type is RecordType.MKDIR
        assert parsed.target_fid == TARGET
        assert parsed.parent_fid == PARENT
        assert parsed.name == "DataDir"
        assert parsed.timestamp == pytest.approx(record.timestamp, abs=1e-3)

    def test_parse_name_with_spaces(self):
        record = ChangelogRecord(
            1, RecordType.CREAT, 0.0, ChangelogFlag.NONE,
            TARGET, PARENT, "my data file.txt",
        )
        assert ChangelogRecord.parse(record.format()).name == "my data file.txt"

    def test_parse_short_line_rejected(self):
        with pytest.raises(ChangelogError):
            ChangelogRecord.parse("1 01CREAT")

    def test_is_namespace_change(self):
        namespace = ChangelogRecord(
            1, RecordType.CREAT, 0.0, ChangelogFlag.NONE, TARGET, PARENT, "f"
        )
        attribute = ChangelogRecord(
            2, RecordType.SATTR, 0.0, ChangelogFlag.NONE, TARGET, PARENT, "f"
        )
        assert namespace.is_namespace_change
        assert not attribute.is_namespace_change


class TestAppendRead:
    def test_indices_monotone_from_one(self):
        log = make_log()
        indices = [
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{i}").index
            for i in range(3)
        ]
        assert indices == [1, 2, 3]

    def test_new_user_sees_only_future_records(self):
        log = make_log()
        log.append(RecordType.CREAT, TARGET, PARENT, "before")
        user = log.register_user()
        assert log.read(user) == []
        log.append(RecordType.CREAT, TARGET, PARENT, "after")
        assert [r.name for r in log.read(user)] == ["after"]

    def test_read_does_not_consume(self):
        log = make_log()
        user = log.register_user()
        log.append(RecordType.CREAT, TARGET, PARENT, "f")
        assert len(log.read(user)) == 1
        assert len(log.read(user)) == 1

    def test_read_respects_max_records(self):
        log = make_log()
        user = log.register_user()
        for index in range(10):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        assert len(log.read(user, max_records=4)) == 4

    def test_unknown_user_rejected(self):
        log = make_log()
        with pytest.raises(ChangelogUserError):
            log.read("cl99")


class TestClearAndPurge:
    def test_clear_advances_bookmark(self):
        log = make_log()
        user = log.register_user()
        for index in range(5):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        records = log.read(user)
        log.clear(user, records[2].index)
        assert [r.name for r in log.read(user)] == ["f3", "f4"]

    def test_purge_frees_records_when_all_users_cleared(self):
        log = make_log()
        user = log.register_user()
        for index in range(5):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        log.clear(user, 5)
        assert log.backlog == 0
        assert log.first_retained_index == 6

    def test_purge_waits_for_slowest_user(self):
        log = make_log()
        fast = log.register_user()
        slow = log.register_user()
        for index in range(4):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        log.clear(fast, 4)
        assert log.backlog == 4  # slow user still needs them
        log.clear(slow, 2)
        assert log.backlog == 2

    def test_clear_beyond_tail_rejected(self):
        log = make_log()
        user = log.register_user()
        log.append(RecordType.CREAT, TARGET, PARENT, "f")
        with pytest.raises(ChangelogError):
            log.clear(user, 2)

    def test_clear_is_monotone(self):
        log = make_log()
        user = log.register_user()
        for index in range(3):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        log.clear(user, 3)
        log.clear(user, 1)  # going backwards must not resurrect records
        assert log.read(user) == []

    def test_deregister_releases_purge_pointer(self):
        log = make_log()
        active = log.register_user()
        lagging = log.register_user()
        for index in range(3):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        log.clear(active, 3)
        assert log.backlog == 3
        log.deregister_user(lagging)
        assert log.backlog == 0

    def test_deregister_unknown_user_rejected(self):
        log = make_log()
        with pytest.raises(ChangelogUserError):
            log.deregister_user("cl7")


class TestCapacity:
    def test_unconsumed_log_drops_oldest_at_capacity(self):
        log = make_log(capacity=3)
        for index in range(5):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        assert log.backlog == 3
        assert log.overflow_drops == 2
        assert log.first_retained_index == 3

    def test_consumed_log_never_drops(self):
        log = make_log(capacity=3)
        user = log.register_user()
        seen = []
        for index in range(10):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
            for record in log.read(user):
                seen.append(record.name)
            log.clear(user, log.last_index)
        assert log.overflow_drops == 0
        assert seen == [f"f{i}" for i in range(10)]


class TestDump:
    def test_dump_renders_all_retained(self):
        log = make_log()
        log.append(RecordType.CREAT, TARGET, PARENT, "data1.txt")
        log.append(RecordType.MKDIR, TARGET, PARENT, "DataDir")
        lines = list(log.dump())
        assert len(lines) == 2
        assert "01CREAT" in lines[0]
        assert "02MKDIR" in lines[1]


# ---------------------------------------------------------------------------
# Property: at-least-once, in-order consumption regardless of batch sizes
# ---------------------------------------------------------------------------


class TestConsumptionProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        n_records=st.integers(0, 60),
        batch_sizes=st.lists(st.integers(1, 7), min_size=1, max_size=20),
    )
    def test_no_record_lost_or_reordered(self, n_records, batch_sizes):
        log = make_log()
        user = log.register_user()
        for index in range(n_records):
            log.append(RecordType.CREAT, TARGET, PARENT, f"f{index}")
        consumed = []
        batch_cycle = iter(batch_sizes * (n_records + 1))
        while True:
            batch = log.read(user, max_records=next(batch_cycle))
            if not batch:
                break
            consumed.extend(record.name for record in batch)
            log.clear(user, batch[-1].index)
        assert consumed == [f"f{i}" for i in range(n_records)]
        assert log.backlog == 0
