"""Integration tests for the full monitor pipeline (deterministic mode)."""

import pytest

from repro.core import (
    AggregatorConfig,
    CollectorConfig,
    LustreMonitor,
    MonitorConfig,
    ProcessorConfig,
)
from repro.core.events import EventType
from repro.lustre import DnePolicy, LustreFilesystem
from repro.util.clock import ManualClock


def build(num_mds=1, dne=DnePolicy.SINGLE, **monitor_kwargs):
    fs = LustreFilesystem(num_mds=num_mds, dne_policy=dne, clock=ManualClock())
    fs.makedirs("/proj/data")
    monitor = LustreMonitor(fs, MonitorConfig(**monitor_kwargs))
    return fs, monitor


class TestEndToEnd:
    def test_events_flow_to_subscriber(self):
        fs, monitor = build()
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        fs.create("/proj/data/f.dat", size=10)
        fs.unlink("/proj/data/f.dat")
        monitor.drain()
        types = [e.event_type for e in seen]
        assert types == [EventType.CREATED, EventType.MODIFIED, EventType.DELETED]
        assert all(e.path == "/proj/data/f.dat" for e in seen)

    def test_complete_stream_no_loss_no_duplicates(self):
        fs, monitor = build()
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(seq))
        for index in range(100):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        assert seen == list(range(1, 101))

    def test_multiple_subscribers_all_receive(self):
        fs, monitor = build()
        a, b = [], []
        monitor.subscribe(lambda seq, ev: a.append(seq))
        monitor.subscribe(lambda seq, ev: b.append(seq))
        fs.create("/proj/data/f")
        monitor.drain()
        assert a == b == [1]

    def test_multi_mds_events_aggregated_site_wide(self):
        fs, monitor = build(num_mds=3, dne=DnePolicy.ROUND_ROBIN)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        for index in range(9):
            fs.mkdir(f"/top{index}")
            fs.create(f"/top{index}/f")
        monitor.drain()
        assert len(seen) == 18
        assert {e.mdt_index for e in seen} == {0, 1, 2}
        # One collector per MDS actually did work.
        stats = monitor.stats()
        active = [
            name
            for name, per in stats.per_collector.items()
            if per["events_reported"] > 0
        ]
        assert len(active) == 3

    def test_changelogs_purged_after_flow(self):
        fs, monitor = build()
        for index in range(20):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        assert all(cl.backlog == 0 for cl in fs.changelogs())

    def test_stats_aggregation(self):
        fs, monitor = build(
            collector=CollectorConfig(
                processor=ProcessorConfig(batch_size=8, cache_size=32)
            )
        )
        monitor.subscribe(lambda seq, ev: None)
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        stats = monitor.stats()
        assert stats.records_read == 10
        assert stats.events_stored == 10
        assert stats.events_published == 10
        assert stats.cache_hits > 0
        assert stats.resolver_invocations < 10


class TestHistoricApi:
    def test_late_joiner_catches_up(self):
        fs, monitor = build()
        for index in range(10):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        late = []
        consumer = monitor.subscribe(lambda seq, ev: late.append(seq), name="late")
        assert consumer.catch_up(api_server=monitor.aggregator) == 10
        assert late == list(range(1, 11))

    def test_catch_up_then_live_without_duplicates(self):
        fs, monitor = build()
        fs.create("/proj/data/early")
        monitor.drain()
        seen = []
        consumer = monitor.subscribe(lambda seq, ev: seen.append(seq))
        consumer.catch_up(api_server=monitor.aggregator)
        fs.create("/proj/data/later")
        monitor.drain()
        assert seen == [1, 2]
        assert consumer.duplicates_skipped == 0

    def test_dropped_consumer_recovers_via_catch_up(self):
        # batch_events=1 flushes one event per PUB message so the tiny
        # subscription HWM (which counts messages) drops per-event.
        fs, monitor = build(
            aggregator=AggregatorConfig(hwm=100_000, batch_events=1),
        )
        # Give this consumer a tiny queue by subscribing directly.
        from repro.core.consumer import Consumer

        seen = []
        config = AggregatorConfig(hwm=5, batch_events=1)
        consumer = Consumer(
            monitor.context, lambda seq, ev: seen.append(seq), config=config
        )
        monitor.consumers.append(consumer)
        for index in range(20):
            fs.create(f"/proj/data/f{index}")
        for collector in monitor.collectors:
            collector.poll_once()
        monitor.aggregator.pump_once()
        # Only 5 fit in the subscription queue; the rest were dropped.
        consumer.poll_once()
        assert consumer.dropped > 0
        recovered = consumer.catch_up(api_server=monitor.aggregator)
        assert recovered > 0
        assert seen == list(range(1, 21))

    def test_store_rotation_bounds_memory(self):
        fs, monitor = build(aggregator=AggregatorConfig(store_max_events=10))
        for index in range(25):
            fs.create(f"/proj/data/f{index}")
        monitor.drain()
        assert len(monitor.aggregator.store) == 10
        assert monitor.aggregator.store.oldest_retained_seq == 16


class TestLiveMode:
    def test_threaded_end_to_end(self):
        import time

        fs, monitor = build()
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev.path))
        monitor.start()
        try:
            for index in range(25):
                fs.create(f"/proj/data/f{index}")
            deadline = time.time() + 5
            while len(seen) < 25 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            monitor.stop()
        assert len(seen) == 25
        assert seen[0] == "/proj/data/f0"

    def test_shutdown_releases_resources(self):
        fs, monitor = build()
        monitor.start()
        monitor.shutdown()
        assert all(cl.users == [] for cl in fs.changelogs())


class TestRippleAgentOnMonitor:
    def test_agent_filters_site_events(self):
        from repro.ripple import Action, RippleAgent, RippleService, Trigger

        fs, monitor = build()
        service = RippleService()
        agent = RippleAgent("store", filesystem=fs)
        service.register_agent(agent)
        agent.attach_lustre_monitor(monitor)
        service.add_rule(
            Trigger(agent_id="store", path_prefix="/proj/data",
                    name_pattern="*.csv"),
            Action("command", "store",
                   {"command": "copy", "dst": "{dir}/{stem}.bak"}),
            name="backup-csv",
        )
        fs.create("/proj/data/t.csv")
        fs.create("/proj/data/ignored.txt")
        monitor.drain()
        service.run_until_quiet()
        assert fs.exists("/proj/data/t.bak")
        assert agent.events_seen >= 2
        assert agent.events_matched == 1
