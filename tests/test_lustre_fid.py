"""Tests for FIDs and sequence allocation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LustreError
from repro.lustre.fid import (
    FID_SEQ_NORMAL,
    Fid,
    FidSequenceAllocator,
    ROOT_FID,
    SEQUENCE_RANGE_PER_MDT,
    mdt_index_of,
)


class TestFidFormat:
    def test_str_matches_lustre_style(self):
        fid = Fid(0x200000402, 0xA046, 0)
        assert str(fid) == "[0x200000402:0xa046:0x0]"

    def test_parse_with_brackets(self):
        fid = Fid.parse("[0x200000402:0xa046:0x0]")
        assert fid == Fid(0x200000402, 0xA046, 0)

    def test_parse_without_brackets(self):
        assert Fid.parse("0x10:0x2:0x0") == Fid(0x10, 2, 0)

    def test_parse_decimal_fields(self):
        assert Fid.parse("[16:2:0]") == Fid(16, 2, 0)

    def test_parse_garbage_rejected(self):
        with pytest.raises(LustreError):
            Fid.parse("not-a-fid")

    def test_parse_short_tuple_rejected(self):
        with pytest.raises(LustreError):
            Fid.parse("[0x1:0x2]")

    @given(st.integers(0, 2**63), st.integers(0, 2**31), st.integers(0, 2**31))
    def test_str_parse_roundtrip(self, seq, oid, ver):
        fid = Fid(seq, oid, ver)
        assert Fid.parse(str(fid)) == fid

    def test_short_form(self):
        assert Fid(0x10, 0x2, 0).short() == "0x10:0x2:0x0"

    def test_fids_are_hashable_and_ordered(self):
        a, b = Fid(1, 1), Fid(1, 2)
        assert a < b
        assert len({a, b, Fid(1, 1)}) == 2

    def test_root_fid_flag(self):
        assert ROOT_FID.is_root
        assert not Fid(FID_SEQ_NORMAL, 1).is_root


class TestAllocator:
    def test_allocates_from_mdt_range(self):
        allocator = FidSequenceAllocator(0)
        fid = allocator.next_fid()
        assert fid.seq == FID_SEQ_NORMAL
        assert fid.oid == 1

    def test_sequential_oids(self):
        allocator = FidSequenceAllocator(0)
        oids = [allocator.next_fid().oid for _ in range(5)]
        assert oids == [1, 2, 3, 4, 5]

    def test_different_mdts_get_disjoint_sequences(self):
        fid0 = FidSequenceAllocator(0).next_fid()
        fid1 = FidSequenceAllocator(1).next_fid()
        assert fid0.seq != fid1.seq
        assert fid1.seq == FID_SEQ_NORMAL + SEQUENCE_RANGE_PER_MDT

    def test_owns_respects_range(self):
        alloc0 = FidSequenceAllocator(0)
        alloc1 = FidSequenceAllocator(1)
        fid0 = alloc0.next_fid()
        assert alloc0.owns(fid0)
        assert not alloc1.owns(fid0)

    def test_negative_index_rejected(self):
        with pytest.raises(LustreError):
            FidSequenceAllocator(-1)

    def test_allocated_counter(self):
        allocator = FidSequenceAllocator(2)
        for _ in range(7):
            allocator.next_fid()
        assert allocator.allocated == 7


class TestMdtIndexOf:
    def test_root_lives_on_mdt0(self):
        assert mdt_index_of(ROOT_FID) == 0

    def test_normal_fid_maps_to_its_mdt(self):
        for mdt in range(4):
            fid = FidSequenceAllocator(mdt).next_fid()
            assert mdt_index_of(fid) == mdt

    def test_reserved_sequence_rejected(self):
        with pytest.raises(LustreError):
            mdt_index_of(Fid(0x5, 1))
