"""Tests for clocks, id generation and token buckets."""

import threading

import pytest

from repro.util.clock import ManualClock, WallClock
from repro.util.idgen import IdGenerator, prefixed_ids
from repro.util.tokens import TokenBucket


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(5.0).now() == 5.0

    def test_advance_moves_forward(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_advance_returns_new_time(self):
        clock = ManualClock(1.0)
        assert clock.advance(1.0) == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)

    def test_set_jumps_to_absolute_time(self):
        clock = ManualClock()
        clock.set(100.0)
        assert clock.now() == 100.0

    def test_set_backwards_rejected(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_thread_safe_advances(self):
        clock = ManualClock()

        def bump():
            for _ in range(1000):
                clock.advance(0.001)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == pytest.approx(4.0)


class TestWallClock:
    def test_now_is_monotone_enough(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_zero_is_noop(self):
        WallClock().sleep(0)  # must not raise or block


class TestIdGenerator:
    def test_sequence_from_start(self):
        gen = IdGenerator(start=10)
        assert [gen.next() for _ in range(3)] == [10, 11, 12]

    def test_last_tracks_most_recent(self):
        gen = IdGenerator()
        gen.next()
        gen.next()
        assert gen.last == 2

    def test_last_before_any_issue(self):
        assert IdGenerator(start=5).last == 4

    def test_concurrent_uniqueness(self):
        gen = IdGenerator()
        seen = []
        lock = threading.Lock()

        def take():
            local = [gen.next() for _ in range(500)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=take) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 2000

    def test_prefixed_ids(self):
        stream = prefixed_ids("agent", start=3)
        assert next(stream) == "agent-3"
        assert next(stream) == "agent-4"


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10, burst=5, clock=ManualClock())
        assert bucket.tokens == pytest.approx(5)

    def test_take_consumes(self):
        bucket = TokenBucket(rate=10, burst=5, clock=ManualClock())
        assert bucket.take(3)
        assert bucket.tokens == pytest.approx(2)

    def test_take_fails_when_insufficient(self):
        bucket = TokenBucket(rate=10, burst=2, clock=ManualClock())
        assert not bucket.take(3)

    def test_refills_at_rate(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10, burst=10, clock=clock)
        bucket.take(10)
        clock.advance(0.5)
        assert bucket.tokens == pytest.approx(5)

    def test_refill_capped_at_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=100, burst=5, clock=clock)
        clock.advance(10)
        assert bucket.tokens == pytest.approx(5)

    def test_delay_until_available(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10, burst=10, clock=clock)
        bucket.take(10)
        assert bucket.delay_until_available(5) == pytest.approx(0.5)

    def test_delay_zero_when_available(self):
        bucket = TokenBucket(rate=10, burst=10, clock=ManualClock())
        assert bucket.delay_until_available(1) == 0.0

    def test_delay_beyond_burst_rejected(self):
        bucket = TokenBucket(rate=10, burst=2, clock=ManualClock())
        with pytest.raises(ValueError):
            bucket.delay_until_available(5)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)

    def test_invalid_take_amount_rejected(self):
        bucket = TokenBucket(rate=1, clock=ManualClock())
        with pytest.raises(ValueError):
            bucket.take(0)
