"""Tests for directory striping defaults, pattern handlers, stats API."""

import pytest

from repro.core import LustreMonitor, MonitorClient
from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import Observer, PatternMatchingEventHandler
from repro.lustre import LustreFilesystem
from repro.util.clock import ManualClock


class TestDirectoryStriping:
    @pytest.fixture
    def fs(self):
        return LustreFilesystem(
            clock=ManualClock(), num_oss=2, osts_per_oss=4,
            default_stripe_count=1,
        )

    def test_filesystem_default(self, fs):
        fs.create("/plain")
        assert fs.get_stripe("/") == 1

    def test_set_stripe_on_directory(self, fs):
        fs.mkdir("/wide")
        fs.set_stripe("/wide", 4)
        fs.create("/wide/big.dat", size=100)
        entry = fs._resolve("/wide/big.dat")
        assert entry.layout.stripe_count == 4

    def test_stripe_inherited_through_subdirectories(self, fs):
        fs.mkdir("/wide")
        fs.set_stripe("/wide", 4)
        fs.makedirs("/wide/sub/deeper")
        assert fs.get_stripe("/wide/sub/deeper") == 4

    def test_child_override_wins(self, fs):
        fs.mkdir("/wide")
        fs.set_stripe("/wide", 8)
        fs.mkdir("/wide/narrow")
        fs.set_stripe("/wide/narrow", 2)
        assert fs.get_stripe("/wide/narrow") == 2
        assert fs.get_stripe("/wide") == 8

    def test_per_file_override(self, fs):
        fs.create("/special.dat", stripe_count=3)
        entry = fs._resolve("/special.dat")
        assert entry.layout.stripe_count == 3

    def test_set_stripe_on_file_rejected(self, fs):
        from repro.errors import NotADirectory

        fs.create("/f")
        with pytest.raises(NotADirectory):
            fs.set_stripe("/f", 2)

    def test_invalid_stripe_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(ValueError):
            fs.set_stripe("/d", 0)

    def test_stripe_capped_at_ost_count(self, fs):
        fs.mkdir("/d")
        fs.set_stripe("/d", 99)
        fs.create("/d/f", size=100)
        assert fs._resolve("/d/f").layout.stripe_count == 8  # 2x4 OSTs


class TestPatternMatchingHandler:
    @pytest.fixture
    def fs(self):
        fs = MemoryFilesystem(clock=ManualClock())
        fs.mkdir("/w")
        return fs

    def _handler_events(self, fs, **kwargs):
        events = []

        class Recorder(PatternMatchingEventHandler):
            def on_any_event(self, event):
                events.append(event.src_path or event.dest_path)

        observer = Observer(fs)
        observer.schedule(Recorder(**kwargs), "/w")
        return events, observer

    def test_patterns_filter_in(self, fs):
        events, observer = self._handler_events(fs, patterns=["*.csv"])
        fs.create("/w/a.csv")
        fs.create("/w/b.txt")
        observer.drain()
        assert events == ["/w/a.csv"]

    def test_ignore_patterns_filter_out(self, fs):
        events, observer = self._handler_events(
            fs, ignore_patterns=["*.tmp", "*.swp"]
        )
        fs.create("/w/keep.dat")
        fs.create("/w/drop.tmp")
        observer.drain()
        assert events == ["/w/keep.dat"]

    def test_ignore_directories(self, fs):
        events, observer = self._handler_events(fs, ignore_directories=True)
        fs.mkdir("/w/sub")
        fs.create("/w/file")
        observer.drain()
        assert events == ["/w/file"]

    def test_moved_event_matches_on_either_name(self, fs):
        events, observer = self._handler_events(fs, patterns=["*.done"])
        fs.create("/w/job.running")
        observer.drain()
        events.clear()
        fs.rename("/w/job.running", "/w/job.done")
        observer.drain()
        assert events == ["/w/job.running"]  # src_path recorded; matched via dest


class TestStatsApi:
    def test_client_stats(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = LustreMonitor(fs)
        client = MonitorClient.for_monitor(monitor)
        for index in range(7):
            fs.create(f"/f{index}")
        monitor.drain()
        stats = client.stats()
        assert stats["events_stored"] == 7
        assert stats["store_last_seq"] == 7
        assert stats["store_len"] == 7
        assert stats["store_memory_bytes"] > 0
