"""Tests for repro.util.paths."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidPath
from repro.util.paths import (
    basename,
    depth,
    dirname,
    is_ancestor,
    join,
    normalize,
    split_components,
)


class TestNormalize:
    def test_plain_absolute_path_unchanged(self):
        assert normalize("/a/b/c") == "/a/b/c"

    def test_root(self):
        assert normalize("/") == "/"

    def test_collapses_repeated_separators(self):
        assert normalize("/a//b///c") == "/a/b/c"

    def test_strips_trailing_slash(self):
        assert normalize("/a/b/") == "/a/b"

    def test_resolves_dot(self):
        assert normalize("/a/./b") == "/a/b"

    def test_resolves_dotdot(self):
        assert normalize("/a/b/../c") == "/a/c"

    def test_dotdot_does_not_escape_root(self):
        assert normalize("/../../a") == "/a"

    def test_relative_path_rejected(self):
        with pytest.raises(InvalidPath):
            normalize("a/b")

    def test_empty_path_rejected(self):
        with pytest.raises(InvalidPath):
            normalize("")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidPath):
            normalize(None)  # type: ignore[arg-type]

    def test_nul_byte_rejected(self):
        with pytest.raises(InvalidPath):
            normalize("/a/b\x00c")

    @given(st.lists(st.text(alphabet="abcXYZ09._-", min_size=1, max_size=8),
                    max_size=6))
    def test_idempotent(self, components):
        path = "/" + "/".join(components)
        once = normalize(path)
        assert normalize(once) == once

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=5))
    def test_result_always_absolute(self, components):
        path = "/" + "//".join(components)
        assert normalize(path).startswith("/")


class TestSplitComponents:
    def test_root_is_empty(self):
        assert split_components("/") == []

    def test_components_in_order(self):
        assert split_components("/a/b/c") == ["a", "b", "c"]

    def test_normalizes_first(self):
        assert split_components("/a//b/./") == ["a", "b"]


class TestJoin:
    def test_single_component(self):
        assert join("/a", "b") == "/a/b"

    def test_multiple_components(self):
        assert join("/", "a", "b", "c") == "/a/b/c"

    def test_component_with_slash_rejected(self):
        with pytest.raises(InvalidPath):
            join("/a", "b/c")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPath):
            join("/a", "")


class TestBasenameDirname:
    def test_basename(self):
        assert basename("/a/b/c.txt") == "c.txt"

    def test_basename_of_root(self):
        assert basename("/") == ""

    def test_dirname(self):
        assert dirname("/a/b/c.txt") == "/a/b"

    def test_dirname_of_top_level(self):
        assert dirname("/a") == "/"

    def test_dirname_of_root(self):
        assert dirname("/") == "/"

    @given(st.lists(st.text(alphabet="abc09", min_size=1, max_size=5),
                    min_size=1, max_size=5))
    def test_join_of_dirname_and_basename_roundtrips(self, components):
        path = "/" + "/".join(components)
        assert join(dirname(path), basename(path)) == normalize(path)


class TestIsAncestor:
    def test_root_is_ancestor_of_everything(self):
        assert is_ancestor("/", "/a/b")

    def test_self_is_ancestor(self):
        assert is_ancestor("/a/b", "/a/b")

    def test_proper_ancestor(self):
        assert is_ancestor("/a", "/a/b/c")

    def test_sibling_prefix_is_not_ancestor(self):
        assert not is_ancestor("/a/b", "/a/bc")

    def test_child_is_not_ancestor_of_parent(self):
        assert not is_ancestor("/a/b", "/a")


class TestDepth:
    def test_root_depth_zero(self):
        assert depth("/") == 0

    def test_nested_depth(self):
        assert depth("/a/b/c") == 3
