"""Tests for feeding Ripple agents through the StorageMonitor facade."""

import pytest

from repro.core import StorageMonitor
from repro.fs.memfs import MemoryFilesystem
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger
from repro.util.clock import ManualClock


class TestAgentOnStorageMonitor:
    def _service_agent(self, fs):
        service = RippleService()
        agent = RippleAgent("store", filesystem=fs)
        service.register_agent(agent)
        return service, agent

    def test_agent_via_changelog_backend(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/in")
        service, agent = self._service_agent(fs)
        monitor = StorageMonitor.for_filesystem(fs)
        agent.attach_storage_monitor(monitor)
        service.add_rule(
            Trigger(agent_id="store", path_prefix="/in", name_pattern="*.dat"),
            Action("command", "store",
                   {"command": "copy", "dst": "{dir}/{stem}.bak"}),
        )
        fs.create("/in/x.dat")
        service.run_until_quiet()
        assert fs.exists("/in/x.bak")
        assert monitor.backend_name == "changelog"

    def test_agent_via_polling_backend(self):
        fs = MemoryFilesystem(clock=ManualClock())
        fs.makedirs("/in")
        service, agent = self._service_agent(fs)
        monitor = StorageMonitor.for_filesystem(fs, backend="polling")
        monitor.watch("/in")
        agent.attach_storage_monitor(monitor)
        service.add_rule(
            Trigger(agent_id="store", path_prefix="/in", name_pattern="*.csv"),
            Action("email", "store", {"to": "x@y"}),
        )
        fs.create("/in/data.csv", b"1")
        service.run_until_quiet()
        assert len(service.outbox) == 1
        assert monitor.backend_name == "polling"

    def test_drain_detection_covers_storage_monitor(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/in")
        service, agent = self._service_agent(fs)
        monitor = StorageMonitor.for_filesystem(fs)
        agent.attach_storage_monitor(monitor)
        service.add_rule(
            Trigger(agent_id="store", path_prefix="/in"),
            Action("email", "store", {"to": "x@y"}),
        )
        fs.create("/in/f.bin")
        agent.drain_detection()  # must pull from the facade
        assert agent.events_matched == 1
