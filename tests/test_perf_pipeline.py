"""Tests for the calibrated performance model — the paper's shapes.

These assertions encode the *qualitative* results the reproduction must
preserve: who wins, where the bottleneck is, what the fixes buy — with
loose numeric tolerances around the paper's measurements.
"""

import pytest

from repro.perf import AWS, IOTA, PipelineConfig, PipelineResult, run_pipeline
from repro.perf.testbeds import PAPER_MONITOR_THROUGHPUT, PAPER_TABLE2


def run(profile, **kwargs):
    defaults = dict(profile=profile, duration=10.0)
    defaults.update(kwargs)
    return run_pipeline(PipelineConfig(**defaults))


class TestBaselineThroughput:
    def test_aws_monitor_rate_matches_paper(self):
        result = run(AWS)
        assert result.delivered_rate == pytest.approx(
            PAPER_MONITOR_THROUGHPUT["AWS"], rel=0.05
        )

    def test_iota_monitor_rate_matches_paper(self):
        result = run(IOTA)
        assert result.delivered_rate == pytest.approx(
            PAPER_MONITOR_THROUGHPUT["Iota"], rel=0.05
        )

    def test_iota_shortfall_near_paper_14_91_percent(self):
        result = run(IOTA)
        assert result.shortfall_percent == pytest.approx(14.91, abs=1.0)

    def test_generation_rates_match_table2(self):
        for profile in (AWS, IOTA):
            result = run(profile)
            assert result.generation_rate == pytest.approx(
                PAPER_TABLE2[profile.name]["total"], rel=0.02
            )

    def test_bottleneck_is_processing_stage(self):
        for profile in (AWS, IOTA):
            result = run(profile)
            assert result.bottleneck == "process"

    def test_monitor_lags_generation_on_both_testbeds(self):
        for profile in (AWS, IOTA):
            result = run(profile)
            assert result.delivered_rate < result.generation_rate
            assert not result.keeps_up

    def test_backlog_grows_when_lagging(self):
        result = run(IOTA)
        assert result.changelog_backlog_peak > 1000

    def test_aggregation_not_a_bottleneck(self):
        """Paper: 'the aggregation and reporting steps introduce no
        additional overhead' — their utilisation stays low."""
        result = run(IOTA)
        util = result.stage_utilisation()
        assert util["aggregate"] < 0.2
        assert util["consume"] < 0.1


class TestOptimisations:
    def test_batching_alone_improves_throughput(self):
        base = run(IOTA)
        batched = run(IOTA, batch_size=64)
        assert batched.delivered_rate > base.delivered_rate

    def test_caching_alone_improves_throughput(self):
        base = run(IOTA)
        cached = run(IOTA, cache_size=4096)
        assert cached.delivered_rate > base.delivered_rate
        assert cached.cache_hit_rate > 0.9

    def test_batching_plus_caching_keeps_up(self):
        """The paper's proposed fix lets the monitor match generation."""
        fixed = run(IOTA, batch_size=64, cache_size=4096)
        assert fixed.keeps_up

    def test_caching_reduces_d2path_invocations(self):
        base = run(IOTA)
        cached = run(IOTA, cache_size=4096)
        assert cached.d2path_invocations < base.d2path_invocations / 5

    def test_fewer_directories_cache_better(self):
        narrow = run(IOTA, cache_size=256, n_directories=16)
        wide = run(IOTA, cache_size=256, n_directories=4096)
        assert narrow.cache_hit_rate > wide.cache_hit_rate


class TestMultiMds:
    def test_two_mds_surpasses_generation_rate(self):
        """Paper: 'If the d2path resolutions were distributed across
        multiple MDS, the throughput of the monitor would surpass the
        event generation rate.'"""
        result = run(IOTA, num_mds=2)
        assert result.keeps_up

    def test_scaling_monotone_until_saturation(self):
        rates = [run(IOTA, num_mds=m).delivered_rate for m in (1, 2, 4)]
        assert rates[0] < rates[1]
        assert rates[1] <= rates[2] * 1.01  # saturates at generation rate

    def test_saturated_rate_equals_generation(self):
        result = run(IOTA, num_mds=4)
        assert result.delivered_rate == pytest.approx(
            result.generation_rate, rel=0.02
        )


class TestShardedAggregation:
    #: With collectors fully optimised, 150k ev/s exceeds one Iota
    #: aggregator's ~100k ev/s service capacity — the §6 scaling wall.
    WALL = dict(
        duration=3.0, num_mds=4, batch_size=64,
        cache_size=2048, arrival_rate=150_000,
    )

    def test_num_aggregators_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(profile=IOTA, num_aggregators=0)

    def test_one_aggregator_is_the_scaling_wall(self):
        result = run(IOTA, **self.WALL)
        assert not result.keeps_up
        assert result.bottleneck == "aggregate"

    def test_sharding_lifts_the_aggregation_ceiling(self):
        single = run(IOTA, **self.WALL)
        sharded = run(IOTA, num_aggregators=2, **self.WALL)
        assert sharded.keeps_up
        assert sharded.delivered_rate > single.delivered_rate

    def test_single_shard_identical_to_pre_sharding_model(self):
        base = run(IOTA, duration=3.0)
        one = run(IOTA, duration=3.0, num_aggregators=1)
        assert one.delivered == base.delivered
        assert one.stage_busy == base.stage_busy


class TestTransports:
    def test_pushpull_and_pubsub_comparable(self):
        pushpull = run(IOTA, transport="pushpull")
        pubsub = run(IOTA, transport="pubsub")
        assert pubsub.delivered_rate == pytest.approx(
            pushpull.delivered_rate, rel=0.05
        )

    def test_reqrep_blocking_roundtrip_hurts(self):
        reqrep = run(IOTA, transport="reqrep")
        pushpull = run(IOTA, transport="pushpull")
        assert reqrep.delivered_rate < 0.5 * pushpull.delivered_rate

    def test_batching_amortises_reqrep_roundtrips(self):
        slow = run(IOTA, transport="reqrep")
        amortised = run(IOTA, transport="reqrep", batch_size=64, cache_size=4096)
        assert amortised.delivered_rate > 2 * slow.delivered_rate

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(profile=IOTA, transport="carrier-pigeon")


class TestResourceModel:
    def test_iota_table3_cpu_shape(self):
        result = run(IOTA, duration=30.0)
        collector = result.resources["collector"]
        aggregator = result.resources["aggregator"]
        consumer = result.resources["consumer"]
        # Collector >> aggregator > consumer, all small.
        assert collector.cpu_percent == pytest.approx(6.667, rel=0.05)
        assert aggregator.cpu_percent == pytest.approx(0.059, rel=0.1)
        assert consumer.cpu_percent == pytest.approx(0.02, rel=0.15)
        assert collector.cpu_percent < 10.0

    def test_iota_table3_memory_shape(self):
        result = run(IOTA, duration=30.0)
        assert result.resources["collector"].memory_mb == pytest.approx(
            281.6, rel=0.05
        )
        assert result.resources["aggregator"].memory_mb == pytest.approx(
            217.6, rel=0.05
        )
        assert result.resources["consumer"].memory_mb == pytest.approx(
            12.8, rel=0.05
        )


class TestModelMechanics:
    def test_deterministic_given_seed(self):
        a = run(IOTA, seed=3, cache_size=64)
        b = run(IOTA, seed=3, cache_size=64)
        assert a.delivered == b.delivered
        assert a.d2path_invocations == b.d2path_invocations

    def test_stochastic_arrivals_close_to_deterministic(self):
        deterministic = run(IOTA)
        stochastic = run(IOTA, stochastic_arrivals=True)
        assert stochastic.delivered_rate == pytest.approx(
            deterministic.delivered_rate, rel=0.05
        )

    def test_low_rate_keeps_up_easily(self):
        result = run(IOTA, arrival_rate=100.0)
        assert result.keeps_up
        assert result.changelog_backlog_peak <= 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(profile=IOTA, duration=0)
        with pytest.raises(ValueError):
            PipelineConfig(profile=IOTA, num_mds=0)
        with pytest.raises(ValueError):
            PipelineConfig(profile=IOTA, batch_size=0)

    def test_profile_d2path_helpers(self):
        assert IOTA.d2path_seconds_per_event == pytest.approx(
            IOTA.d2path_overhead_seconds + IOTA.d2path_per_fid_seconds
        )
        assert IOTA.d2path_batch_seconds(0) == 0.0
        assert IOTA.d2path_batch_seconds(10) == pytest.approx(
            IOTA.d2path_overhead_seconds + 10 * IOTA.d2path_per_fid_seconds
        )

    def test_op_latencies_derived_from_table2(self):
        latencies = AWS.op_latencies
        assert 1.0 / latencies.create == pytest.approx(352)


class TestStochasticRobustness:
    def test_stochastic_service_preserves_headline(self):
        result = run(IOTA, stochastic_service=True, seed=11)
        assert result.delivered_rate == pytest.approx(8162, rel=0.03)
        assert result.bottleneck == "process"

    def test_fully_stochastic_run_close_to_deterministic(self):
        deterministic = run(IOTA)
        noisy = run(
            IOTA, stochastic_service=True, stochastic_arrivals=True, seed=13
        )
        assert noisy.delivered_rate == pytest.approx(
            deterministic.delivered_rate, rel=0.05
        )

    def test_stochastic_fix_still_keeps_up(self):
        fixed = run(
            IOTA, batch_size=64, cache_size=4096,
            stochastic_service=True, stochastic_arrivals=True, seed=17,
        )
        assert fixed.keeps_up
