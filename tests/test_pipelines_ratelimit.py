"""Tests for the pipeline builder and agent action rate limiting."""

import pytest

from repro.core.events import EventType
from repro.errors import RuleValidationError
from repro.ripple import (
    Action,
    PipelineBuilder,
    RippleAgent,
    RippleService,
    Trigger,
)
from repro.util.clock import ManualClock
from repro.util.tokens import TokenBucket


class TestPipelineBuilder:
    def _service_with_agents(self):
        service = RippleService()
        lab = RippleAgent("lab")
        laptop = RippleAgent("laptop")
        service.register_agent(lab)
        service.register_agent(laptop)
        lab.attach_local_filesystem()
        laptop.attach_local_filesystem()
        lab.fs.makedirs("/raw")
        laptop.fs.makedirs("/inbox")
        return service, lab, laptop

    def test_three_stage_chain_executes(self):
        service, lab, laptop = self._service_with_agents()
        pipeline = (
            PipelineBuilder("analysis")
            .first(
                "checksum", "lab", "/raw", "*.dat",
                Action("command", "lab",
                       {"command": "checksum", "dst": "{dir}/{stem}.sha"}),
                output_pattern="*.sha",
            )
            .then(
                "replicate",
                Action("transfer", "lab",
                       {"destination_agent": "laptop",
                        "destination_path": "/inbox/{name}"}),
                output_pattern="*.sha",
                output_agent="laptop",
                output_prefix="/inbox",
            )
            .then(
                "notify",
                Action("email", "laptop", {"to": "pi@lab"}),
            )
        )
        rules = pipeline.install(service)
        assert len(rules) == 3
        assert rules[0].name == "analysis/checksum"
        lab.fs.create("/raw/x.dat", b"bytes")
        service.run_until_quiet()
        assert lab.fs.exists("/raw/x.sha")
        assert laptop.fs.exists("/inbox/x.sha")
        assert len(service.outbox) == 1

    def test_then_inherits_previous_location(self):
        pipeline = (
            PipelineBuilder("p")
            .first("a", "agent", "/d", "*.in",
                   Action("email", "agent", {"to": "x"}),
                   output_pattern="*.out")
            .then("b", Action("email", "agent", {"to": "y"}))
        )
        stage = pipeline.stages[1]
        assert stage.agent_id == "agent"
        assert stage.path_prefix == "/d"
        assert stage.match_pattern == "*.out"

    def test_then_without_first_rejected(self):
        with pytest.raises(RuleValidationError):
            PipelineBuilder("p").then("x", Action("email", "a", {"to": "x"}))

    def test_then_after_terminal_stage_rejected(self):
        pipeline = PipelineBuilder("p").first(
            "a", "agent", "/d", "*.in", Action("email", "agent", {"to": "x"})
        )
        with pytest.raises(RuleValidationError):
            pipeline.then("b", Action("email", "agent", {"to": "y"}))

    def test_double_first_rejected(self):
        pipeline = PipelineBuilder("p").first(
            "a", "agent", "/d", "*", Action("email", "agent", {"to": "x"})
        )
        with pytest.raises(RuleValidationError):
            pipeline.first(
                "b", "agent", "/d", "*", Action("email", "agent", {"to": "x"})
            )

    def test_install_empty_rejected(self):
        with pytest.raises(RuleValidationError):
            PipelineBuilder("p").install(RippleService())

    def test_describe_lists_stages(self):
        pipeline = (
            PipelineBuilder("tomo")
            .first("stage", "lab", "/raw", "*.tiff",
                   Action("email", "lab", {"to": "x"}),
                   output_pattern="*.h5")
            .then("publish", Action("email", "lab", {"to": "y"}))
        )
        text = pipeline.describe()
        assert "tomo" in text
        assert "stage" in text and "publish" in text
        assert "*.tiff" in text


class TestActionRateLimit:
    def _burst_setup(self, bucket):
        service = RippleService()
        agent = RippleAgent("dev")
        agent.rate_limiter = bucket
        service.register_agent(agent)
        agent.attach_local_filesystem()
        agent.fs.makedirs("/in")
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.dat"),
            Action("command", "dev",
                   {"command": "copy", "dst": "{dir}/{stem}.bak"}),
        )
        return service, agent

    def test_burst_limited_to_bucket_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1, burst=3, clock=clock)
        service, agent = self._burst_setup(bucket)
        for index in range(10):
            agent.fs.create(f"/in/f{index}.dat", b"")
        agent.drain_detection()
        service.executor.drain()
        agent.execute_pending()
        assert agent.actions_executed == 3
        assert agent.actions_deferred == 1
        assert len(agent.inbox) == 7

    def test_deferred_actions_run_after_refill(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1, burst=3, clock=clock)
        service, agent = self._burst_setup(bucket)
        for index in range(5):
            agent.fs.create(f"/in/f{index}.dat", b"")
        agent.drain_detection()
        service.executor.drain()
        agent.execute_pending()
        assert agent.actions_executed == 3
        clock.advance(2.0)  # 2 more tokens
        agent.execute_pending()
        assert agent.actions_executed == 5
        assert not agent.inbox

    def test_no_limiter_executes_everything(self):
        service, agent = self._burst_setup(None)
        agent.rate_limiter = None
        for index in range(10):
            agent.fs.create(f"/in/f{index}.dat", b"")
        service.run_until_quiet()
        assert agent.actions_executed == 10
