"""Edge cases across modules not covered by the main suites."""

import pytest

from repro.core import AggregatorConfig, LustreMonitor
from repro.core.aggregator import Aggregator
from repro.errors import (
    FileExists,
    NotADirectory,
    SimulationError,
    WouldBlock,
)
from repro.lustre import LustreFilesystem
from repro.msgq import Context
from repro.perf import CloudConfig
from repro.sim import Environment
from repro.util.clock import ManualClock


class TestSimEngineEdges:
    def test_any_of_failure_propagates(self):
        env = Environment()
        caught = []

        def waiter(env):
            bad = env.event()
            ok = env.timeout(10)
            condition = env.any_of([bad, ok])
            bad.fail(RuntimeError("first failed"))
            try:
                yield condition
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert caught == ["first failed"]

    def test_all_of_failure_propagates(self):
        env = Environment()
        caught = []

        def waiter(env):
            bad = env.event()
            condition = env.all_of([env.timeout(1), bad])
            bad.fail(ValueError("partial failure"))
            try:
                yield condition
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter(env))
        env.run()
        assert caught == ["partial failure"]

    def test_interrupt_while_waiting_on_store_get(self):
        from repro.sim import Store
        from repro.sim.engine import Interrupt

        env = Environment()
        store = Store(env)
        outcomes = []

        def blocked(env):
            try:
                yield store.get()
            except Interrupt:
                outcomes.append("interrupted")

        def interrupter(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(blocked(env))
        env.process(interrupter(env, victim))
        env.run()
        assert outcomes == ["interrupted"]
        # The abandoned get must not steal a later put.
        def producer(env):
            yield store.put("item")

        env.process(producer(env))
        env.run()
        assert store.level == 1

    def test_run_until_untriggered_event_with_empty_heap(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]


class TestAggregatorApiEdges:
    def test_unknown_op_returns_error_to_caller(self):
        context = Context()
        aggregator = Aggregator(context)
        client = context.req().connect(AggregatorConfig().api_endpoint)
        import threading

        errors = []

        def ask():
            try:
                client.request({"op": "explode"}, timeout=2.0)
            except ValueError as exc:
                errors.append(str(exc))

        thread = threading.Thread(target=ask)
        thread.start()
        while thread.is_alive():
            aggregator.serve_api_once(timeout=0.05)
            thread.join(timeout=0.001)
        assert errors and "unknown API op" in errors[0]

    def test_pump_once_with_timeout_waits(self):
        import threading
        import time

        context = Context()
        aggregator = Aggregator(context)
        push = context.push().connect(AggregatorConfig().inbound_endpoint)

        def late_send():
            time.sleep(0.05)
            from repro.core.events import EventType, FileEvent

            push.send([
                FileEvent(
                    event_type=EventType.CREATED, path="/x", is_dir=False,
                    timestamp=0.0, name="x", source="lustre",
                )
            ])

        thread = threading.Thread(target=late_send)
        thread.start()
        handled = aggregator.pump_once(timeout=2.0)
        thread.join()
        assert handled == 1


class TestLustreEdges:
    def test_makedirs_through_file_rejected(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.create("/blocker")
        with pytest.raises(NotADirectory):
            fs.makedirs("/blocker/child")

    def test_create_with_size_emits_close_record(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.create("/sized", size=100)
        mnemonics = [line.split()[1] for line in fs.changelogs()[0].dump()]
        assert mnemonics == ["01CREAT", "11CLOSE"]

    def test_hardlink_to_directory_rejected(self):
        from repro.errors import IsADirectory

        fs = LustreFilesystem(clock=ManualClock())
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.hardlink("/d", "/link")

    def test_symlink_name_collision_rejected(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.create("/exists")
        with pytest.raises(FileExists):
            fs.symlink("/target", "/exists")

    def test_entry_count_tracks_lifecycle(self):
        fs = LustreFilesystem(clock=ManualClock())
        base = fs.entry_count
        fs.mkdir("/d")
        fs.create("/d/f")
        assert fs.entry_count == base + 2
        fs.rmtree("/d")
        assert fs.entry_count == base

    def test_monitor_on_empty_filesystem_is_quiet(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(seq))
        assert monitor.drain() == 0
        assert seen == []


class TestMsgqEdges:
    def test_sequential_requests_on_one_req_socket(self):
        import threading

        context = Context()
        rep = context.rep().bind("inproc://api")
        req = context.req().connect("inproc://api")
        results = []

        def server():
            for _ in range(3):
                rep.serve_once(lambda request: request + 1, timeout=2.0)

        thread = threading.Thread(target=server)
        thread.start()
        for value in (1, 10, 100):
            results.append(req.request(value, timeout=2.0))
        thread.join()
        assert results == [2, 11, 101]

    def test_context_close_is_idempotent(self):
        context = Context()
        context.pub().bind("inproc://x")
        context.close()
        context.close()  # second close must not raise

    def test_recv_nonblocking_on_empty_pull(self):
        context = Context()
        pull = context.pull().bind("inproc://p")
        with pytest.raises(WouldBlock):
            pull.recv(block=False)


class TestCloudConfigValidation:
    def test_bad_arrival_rate(self):
        with pytest.raises(ValueError):
            CloudConfig(arrival_rate=0)

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            CloudConfig(arrival_rate=1, concurrency=0)

    def test_bad_failure_probability(self):
        with pytest.raises(ValueError):
            CloudConfig(arrival_rate=1, failure_probability=1.0)


class TestSymlinkReadlink:
    def test_readlink_returns_target(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.create("/target")
        fs.symlink("/target", "/link")
        assert fs.readlink("/link") == "/target"

    def test_readlink_on_file_rejected(self):
        from repro.errors import InvalidPath

        fs = LustreFilesystem(clock=ManualClock())
        fs.create("/plain")
        with pytest.raises(InvalidPath):
            fs.readlink("/plain")

    def test_dangling_symlink_allowed(self):
        fs = LustreFilesystem(clock=ManualClock())
        fs.symlink("/does/not/exist", "/dangling")
        assert fs.readlink("/dangling") == "/does/not/exist"
