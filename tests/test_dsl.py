"""Tests for the rule DSL."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.events import EventType
from repro.errors import RuleValidationError
from repro.ripple import (
    Action,
    RippleAgent,
    RippleService,
    Rule,
    Trigger,
    format_rule,
    install_rules,
    parse_rule,
    parse_rules,
)


class TestParseRule:
    def test_minimal_rule(self):
        rule = parse_rule(
            "WHEN created OF *.csv UNDER /in ON dev\n"
            "THEN email ON dev WITH to=pi@lab"
        )
        assert rule.trigger.agent_id == "dev"
        assert rule.trigger.path_prefix == "/in"
        assert rule.trigger.name_pattern == "*.csv"
        assert rule.trigger.event_types == frozenset({EventType.CREATED})
        assert rule.action.action_type == "email"
        assert rule.action.parameters == {"to": "pi@lab"}

    def test_multiple_event_types(self):
        rule = parse_rule(
            "WHEN created,moved,deleted OF * UNDER /d ON a\n"
            "THEN command ON a WITH command=touch"
        )
        assert rule.trigger.event_types == frozenset(
            {EventType.CREATED, EventType.MOVED, EventType.DELETED}
        )

    def test_dirs_flag(self):
        rule = parse_rule(
            "WHEN created OF * UNDER /d ON a DIRS\n"
            "THEN email ON a WITH to=x"
        )
        assert rule.trigger.include_directories

    def test_quoted_parameter_values(self):
        rule = parse_rule(
            "WHEN created OF * UNDER /d ON a\n"
            'THEN email ON a WITH to=x subject="new file {name}"'
        )
        assert rule.action.parameters["subject"] == "new file {name}"

    def test_templated_values_pass_through(self):
        rule = parse_rule(
            "WHEN created OF *.dat UNDER /d ON a\n"
            "THEN command ON a WITH command=checksum dst={dir}/{stem}.sha"
        )
        assert rule.action.parameters["dst"] == "{dir}/{stem}.sha"

    def test_action_without_parameters(self):
        rule = parse_rule(
            "WHEN created OF * UNDER /d ON a\nTHEN callable ON a"
        )
        assert rule.action.parameters == {}

    def test_case_insensitive_keywords(self):
        rule = parse_rule(
            "when created of * under /d on a\nthen email on a with to=x"
        )
        assert rule.action.action_type == "email"

    def test_unknown_event_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule("WHEN exploded OF * UNDER /d ON a\nTHEN email ON a")

    def test_unknown_action_type_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule("WHEN created OF * UNDER /d ON a\nTHEN teleport ON a")

    def test_missing_then_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule("WHEN created OF * UNDER /d ON a")

    def test_malformed_when_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule("WHEN created UNDER /d ON a\nTHEN email ON a")

    def test_bad_parameter_syntax_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule(
                "WHEN created OF * UNDER /d ON a\n"
                "THEN email ON a WITH to"
            )

    def test_junk_after_when_rejected(self):
        with pytest.raises(RuleValidationError):
            parse_rule(
                "WHEN created OF * UNDER /d ON a NONSENSE\n"
                "THEN email ON a"
            )


class TestParseRules:
    RULES_FILE = """
# checksum new images
WHEN created OF *.tiff UNDER /data ON lab
THEN command ON lab WITH command=checksum dst={dir}/{stem}.sha

# replicate checksums
WHEN created OF *.sha UNDER /data ON lab
THEN transfer ON lab WITH destination_agent=laptop destination_path=/inbox/{name}
"""

    def test_parses_multiple_rules_with_names(self):
        rules = parse_rules(self.RULES_FILE)
        assert len(rules) == 2
        assert rules[0].name == "checksum new images"
        assert rules[1].name == "replicate checksums"
        assert rules[1].action.action_type == "transfer"

    def test_install_on_service_and_fire(self):
        service = RippleService()
        lab = RippleAgent("lab")
        laptop = RippleAgent("laptop")
        service.register_agent(lab)
        service.register_agent(laptop)
        lab.attach_local_filesystem()
        lab.fs.makedirs("/data")
        installed = install_rules(service, self.RULES_FILE)
        assert len(installed) == 2
        lab.fs.create("/data/scan.tiff", b"img")
        service.run_until_quiet()
        assert laptop.fs.exists("/inbox/scan.sha")

    def test_empty_text_gives_no_rules(self):
        assert parse_rules("\n\n# just a comment\n\n") == []


class TestFormatRule:
    def test_roundtrip_simple(self):
        original = parse_rule(
            "WHEN created,deleted OF *.log UNDER /var ON host DIRS\n"
            "THEN command ON host WITH command=delete"
        )
        reparsed = parse_rule(format_rule(original))
        assert reparsed.trigger == original.trigger
        assert reparsed.action == original.action

    def test_roundtrip_quoted_values(self):
        original = Rule(
            Trigger(agent_id="a", path_prefix="/d"),
            Action("email", "a", {"subject": "hello world {name}"}),
            name="notify",
        )
        text = format_rule(original)
        assert '"hello world {name}"' in text
        reparsed = parse_rule(text, name="notify")
        assert reparsed.action.parameters == original.action.parameters

    @settings(max_examples=40, deadline=None)
    @given(
        events=st.sets(st.sampled_from(list(EventType)), min_size=1, max_size=3),
        pattern=st.sampled_from(["*", "*.csv", "scan_??.tiff"]),
        prefix=st.sampled_from(["/a", "/a/b", "/deep/er/path"]),
        agent=st.sampled_from(["lab", "laptop"]),
        dirs=st.booleans(),
    )
    def test_roundtrip_property(self, events, pattern, prefix, agent, dirs):
        original = Rule(
            Trigger(
                agent_id=agent, path_prefix=prefix,
                event_types=frozenset(events), name_pattern=pattern,
                include_directories=dirs,
            ),
            Action("command", agent, {"command": "touch"}),
        )
        reparsed = parse_rule(format_rule(original))
        assert reparsed.trigger == original.trigger
        assert reparsed.action == original.action


class TestExportRules:
    def test_export_roundtrip_through_install(self):
        from repro.ripple import install_rules

        source = RippleService()
        source.add_rule(
            Trigger(agent_id="lab", path_prefix="/data",
                    name_pattern="*.tiff"),
            Action("command", "lab",
                   {"command": "checksum", "dst": "{dir}/{stem}.sha"}),
            name="checksum",
        )
        source.add_rule(
            Trigger(agent_id="lab", path_prefix="/data",
                    name_pattern="*.sha",
                    event_types=frozenset({EventType.CREATED,
                                           EventType.MOVED})),
            Action("email", "lab", {"to": "pi@lab",
                                    "subject": "done {name}"}),
            name="notify",
        )
        text = source.export_rules()
        target = RippleService()
        installed = install_rules(target, text)
        assert len(installed) == 2
        assert {r.name for r in installed} == {"checksum", "notify"}
        original = {r.name: (r.trigger, r.action) for r in source.rules}
        restored = {r.name: (r.trigger, r.action) for r in target.rules}
        assert original == restored

    def test_export_empty_service(self):
        assert RippleService().export_rules() == ""
