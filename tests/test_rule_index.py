"""Tests for the compiled rule-matching engine (RuleIndex).

The contract under test: :meth:`RuleIndex.matching` (the trie-indexed
path behind ``RuleSet.matching`` and the agent filter) returns exactly
what the reference linear sweep returns, in the same order, across
overlapping prefixes, glob patterns, disabled rules, MOVED old-path
matching and rule churn — while evaluating only trie-surfaced
candidates (the op counters make that observable).

Also covers the batch delivery path the index feeds: the Consumer's
``batch_callback`` and pre-normalized ``path_prefix`` filter, and the
agent's ``ingest_batch``.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import Aggregator, AggregatorConfig, Consumer
from repro.core.events import EventType, FileEvent
from repro.msgq import Context
from repro.ripple.index import RuleIndex
from repro.ripple.rules import Action, Rule, RuleSet, Trigger


def make_event(path, event_type=EventType.CREATED, is_dir=False,
               old_path=None, name=None):
    return FileEvent(
        event_type=event_type, path=path, is_dir=is_dir, timestamp=1.0,
        name=(path.rsplit("/", 1)[-1] if path else "") if name is None
        else name,
        source="inotify", old_path=old_path,
    )


def make_rule(agent="a", prefix="/d", pattern="*", event_types=None,
              include_directories=False, enabled=True):
    return Rule(
        Trigger(
            agent_id=agent, path_prefix=prefix, name_pattern=pattern,
            event_types=(
                frozenset({EventType.CREATED})
                if event_types is None else frozenset(event_types)
            ),
            include_directories=include_directories,
        ),
        Action("email", agent),
        enabled=enabled,
    )


# ---------------------------------------------------------------------------
# RuleIndex unit behavior
# ---------------------------------------------------------------------------


class TestRuleIndexBasics:
    def test_matches_exact_prefix_and_descendants(self):
        index = RuleIndex([make_rule(prefix="/proj/ml")])
        assert len(index.matching(make_event("/proj/ml"))) == 1
        assert len(index.matching(make_event("/proj/ml/run1/out.h5"))) == 1
        assert index.matching(make_event("/proj/other/f")) == []

    def test_root_prefix_matches_everything(self):
        index = RuleIndex([make_rule(prefix="/")])
        assert len(index.matching(make_event("/any/where/f"))) == 1

    def test_event_type_bucketing(self):
        index = RuleIndex(
            [make_rule(event_types={EventType.DELETED, EventType.MOVED})]
        )
        assert index.matching(make_event("/d/f", EventType.CREATED)) == []
        assert len(index.matching(make_event("/d/f", EventType.DELETED))) == 1

    def test_name_pattern_compiled(self):
        index = RuleIndex([make_rule(pattern="*.tiff")])
        assert len(index.matching(make_event("/d/scan.tiff"))) == 1
        assert index.matching(make_event("/d/scan.jpg")) == []

    def test_directories_respected(self):
        files_only = make_rule(pattern="*")
        with_dirs = make_rule(include_directories=True)
        index = RuleIndex([files_only, with_dirs])
        matched = index.matching(make_event("/d/sub", is_dir=True))
        assert matched == [with_dirs]

    def test_moved_event_matches_by_old_path(self):
        rule = make_rule(prefix="/watched", event_types={EventType.MOVED})
        index = RuleIndex([rule])
        moved = make_event(
            "/elsewhere/f", EventType.MOVED, old_path="/watched/f"
        )
        assert index.matching(moved) == [rule]

    def test_moved_event_with_both_paths_under_prefix_not_duplicated(self):
        rule = make_rule(prefix="/w", event_types={EventType.MOVED})
        index = RuleIndex([rule])
        moved = make_event("/w/new", EventType.MOVED, old_path="/w/old")
        assert index.matching(moved) == [rule]

    def test_disabled_rule_is_not_indexed(self):
        index = RuleIndex([make_rule(enabled=False)])
        assert len(index) == 0
        assert index.matching(make_event("/d/f")) == []

    def test_results_in_insertion_order(self):
        outer = make_rule(prefix="/d")
        inner = make_rule(prefix="/d/sub")
        catch_all = make_rule(prefix="/")
        index = RuleIndex([outer, inner, catch_all])
        matched = index.matching(make_event("/d/sub/f"))
        assert matched == [outer, inner, catch_all]

    def test_container_protocol(self):
        rule = make_rule()
        index = RuleIndex([rule])
        assert len(index) == 1
        assert rule.rule_id in index
        assert list(index) == [rule]

    def test_remove_then_match(self):
        keep, drop = make_rule(prefix="/d"), make_rule(prefix="/d")
        index = RuleIndex([keep, drop])
        index.remove(drop)
        assert index.matching(make_event("/d/f")) == [keep]

    def test_remove_unknown_is_noop(self):
        index = RuleIndex([make_rule()])
        index.remove(make_rule())  # never added
        assert len(index) == 1

    def test_set_enabled_round_trip(self):
        rule = make_rule()
        index = RuleIndex([rule])
        rule.enabled = False
        index.set_enabled(rule)
        assert index.matching(make_event("/d/f")) == []
        rule.enabled = True
        index.set_enabled(rule)
        assert index.matching(make_event("/d/f")) == [rule]


class TestRuleIndexCounters:
    def test_disjoint_prefixes_prune_evaluations(self):
        # 100 rules on 100 disjoint subtrees: an event under one subtree
        # must evaluate one candidate, not all 100.
        rules = [make_rule(prefix=f"/proj/p{i}") for i in range(100)]
        index = RuleIndex(rules)
        index.reset_op_counters()
        matched = index.matching(make_event("/proj/p7/out.dat"))
        assert matched == [rules[7]]
        assert index.candidates_considered == 1
        assert index.rules_evaluated == 1

    def test_reset_op_counters(self):
        index = RuleIndex([make_rule()])
        index.matching(make_event("/d/f"))
        index.reset_op_counters()
        assert index.candidates_considered == 0
        assert index.rules_evaluated == 0


class TestBatchMatching:
    def test_batch_equals_per_event(self):
        rules = [
            make_rule(prefix="/d", pattern="*.csv"),
            make_rule(prefix="/d/sub"),
            make_rule(prefix="/"),
        ]
        index = RuleIndex(rules)
        events = [
            make_event("/d/a.csv"),
            make_event("/d/sub/b.txt"),
            make_event("/other/c"),
            make_event("/d/d.csv"),
        ]
        batched = index.matching_batch(events)
        assert [(e, index.matching(e)) for e in events] == batched

    def test_same_directory_run_walks_trie_once(self):
        # The per-(directory, type) cache: a burst into one directory
        # surfaces identical candidates without re-walking; counters
        # still account per event.
        rules = [make_rule(prefix=f"/p{i}") for i in range(50)]
        index = RuleIndex(rules)
        events = [make_event(f"/p3/f{i}.dat") for i in range(20)]
        index.reset_op_counters()
        results = index.matching_batch(events)
        assert all(matched == [rules[3]] for _event, matched in results)
        assert index.rules_evaluated == 20  # one candidate per event


# ---------------------------------------------------------------------------
# Equivalence with the linear sweep (hypothesis)
# ---------------------------------------------------------------------------

_COMPONENTS = ["data", "proj", "sub", "deep", "x"]
_NAMES = ["f.csv", "scan.tiff", "f.txt", "noext", "run.log"]
_PATTERNS = ["*", "*.csv", "*.t*", "f*", "?can.tiff", "[rf]*"]
_TYPES = [
    EventType.CREATED, EventType.DELETED, EventType.MODIFIED,
    EventType.MOVED,
]


def _prefix_strategy():
    return st.lists(st.sampled_from(_COMPONENTS), max_size=3).map(
        lambda parts: "/" + "/".join(parts)
    )


def _path_strategy():
    return st.tuples(
        st.lists(st.sampled_from(_COMPONENTS), max_size=3),
        st.sampled_from(_NAMES),
    ).map(lambda t: "/" + "/".join(t[0] + [t[1]]))


_RULE_SPEC = st.tuples(
    _prefix_strategy(),
    st.sampled_from(_PATTERNS),
    st.sets(st.sampled_from(_TYPES), min_size=1, max_size=3),
    st.booleans(),  # include_directories
    st.booleans(),  # enabled
)

_EVENT_SPEC = st.tuples(
    _path_strategy(),
    st.sampled_from(_TYPES),
    st.booleans(),  # is_dir
    st.one_of(st.none(), _path_strategy()),  # old_path (MOVED)
)


def _build(rule_specs):
    rules = RuleSet()
    for prefix, pattern, types, include_dirs, enabled in rule_specs:
        rule = rules.add(
            make_rule(
                prefix=prefix, pattern=pattern, event_types=types,
                include_directories=include_dirs,
            )
        )
        if not enabled:
            rules.set_enabled(rule.rule_id, False)
    return rules


def _build_event(spec):
    path, event_type, is_dir, old_path = spec
    if event_type is not EventType.MOVED:
        old_path = None
    return make_event(path, event_type, is_dir=is_dir, old_path=old_path)


class TestLinearEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        rule_specs=st.lists(_RULE_SPEC, max_size=12),
        event_specs=st.lists(_EVENT_SPEC, max_size=8),
    )
    def test_indexed_matching_equals_linear_sweep(
        self, rule_specs, event_specs
    ):
        rules = _build(rule_specs)
        for spec in event_specs:
            event = _build_event(spec)
            assert rules.matching("a", event) == rules.matching_linear(
                "a", event
            )

    @settings(max_examples=60, deadline=None)
    @given(
        rule_specs=st.lists(_RULE_SPEC, min_size=1, max_size=10),
        churn=st.lists(
            st.tuples(st.sampled_from(["remove", "disable", "enable"]),
                      st.integers(0, 9)),
            max_size=8,
        ),
        event_specs=st.lists(_EVENT_SPEC, max_size=6),
    )
    def test_equivalence_survives_rule_churn(
        self, rule_specs, churn, event_specs
    ):
        rules = _build(rule_specs)
        ids = [rule.rule_id for rule in rules.for_agent("a")]
        removed = set()
        for op, which in churn:
            rule_id = ids[which % len(ids)]
            if rule_id in removed:
                continue
            if op == "remove":
                rules.remove(rule_id)
                removed.add(rule_id)
            else:
                rules.set_enabled(rule_id, op == "enable")
        for spec in event_specs:
            event = _build_event(spec)
            assert rules.matching("a", event) == rules.matching_linear(
                "a", event
            )
        # The incrementally-maintained index agrees with a fresh build.
        incremental = rules.index_for("a")
        rebuilt = RuleIndex(rules.for_agent("a"))
        for spec in event_specs:
            event = _build_event(spec)
            assert incremental.matching(event) == rebuilt.matching(event)

    @settings(max_examples=40, deadline=None)
    @given(
        rule_specs=st.lists(_RULE_SPEC, max_size=10),
        event_specs=st.lists(_EVENT_SPEC, max_size=10),
    )
    def test_batch_matching_equals_per_event(self, rule_specs, event_specs):
        index = RuleIndex(
            _build(rule_specs).for_agent("a")
        )
        events = [_build_event(spec) for spec in event_specs]
        assert index.matching_batch(events) == [
            (event, index.matching(event)) for event in events
        ]


# ---------------------------------------------------------------------------
# Fused bucket programs: dedup, partitions, pruning masks, recompiles
# ---------------------------------------------------------------------------


class TestFusedBucketProgram:
    def test_identical_predicates_deduped(self):
        # 50 rules sharing one predicate (same prefix/pattern/dirs):
        # the fused program evaluates it ONCE and fans out to all
        # owners, in insertion order.
        rules = [make_rule(prefix="/d", pattern="*.dat") for _ in range(50)]
        index = RuleIndex(rules)
        index.reset_op_counters()
        assert index.matching(make_event("/d/a.dat")) == rules
        assert index.candidates_considered == 50
        assert index.rules_evaluated == 1

    def test_literal_names_hash_partition(self):
        # Patterns without glob metacharacters go into a hash lookup:
        # a non-matching literal costs zero evaluations.
        done = make_rule(prefix="/d", pattern="DONE")
        other = make_rule(prefix="/d", pattern="OTHER")
        index = RuleIndex([done, other])
        index.reset_op_counters()
        assert index.matching(make_event("/d/DONE")) == [done]
        assert index.rules_evaluated == 1

    def test_merged_glob_alternation_reports_all_matches(self):
        # One merged regex pass must report EVERY matching glob, not
        # just the first alternative.
        globs = ["*.dat", "data.*", "*a*", "*.h5"]
        rules = [make_rule(prefix="/d", pattern=p) for p in globs]
        index = RuleIndex(rules)
        assert index.matching(make_event("/d/data.dat")) == rules[:3]

    def test_type_mask_stops_descent(self):
        # No descendant watches DELETED: the walk stops at the root
        # without surfacing (or evaluating) anything.
        index = RuleIndex([make_rule(prefix="/a/b/c")])
        index.reset_op_counters()
        assert index.matching(make_event("/a/b/c/f", EventType.DELETED)) == []
        assert index.candidates_considered == 0
        assert index.rules_evaluated == 0

    def test_first_byte_mask_skips_bucket(self):
        # Every pattern in the bucket pins its first name byte; an
        # event whose name can't match skips the bucket entirely.
        index = RuleIndex([make_rule(prefix="/d", pattern="DONE.*")])
        index.reset_op_counters()
        assert index.matching(make_event("/d/result.txt")) == []
        assert index.candidates_considered == 0

    def test_dirs_mask_skips_bucket(self):
        # A files-only bucket is skipped for directory events before
        # any candidate is counted.
        index = RuleIndex([make_rule(prefix="/d")])
        index.reset_op_counters()
        assert index.matching(make_event("/d/sub", is_dir=True)) == []
        assert index.candidates_considered == 0

    def test_directly_disabled_rule_attribute_rejected(self):
        # A rule disabled by attribute mutation (without telling the
        # index) still never matches.
        rule = make_rule()
        index = RuleIndex([rule])
        rule.enabled = False
        assert index.matching(make_event("/d/f")) == []

    def test_recompile_is_per_dirty_bucket(self):
        r1, r2 = make_rule(prefix="/a"), make_rule(prefix="/b")
        index = RuleIndex([r1, r2])
        index.matching(make_event("/a/f"))
        index.matching(make_event("/b/f"))
        assert index.program_recompiles == 2
        # Adding under /a dirties only /a's bucket; /b's compiled
        # program survives.
        index.add(make_rule(prefix="/a"))
        index.matching(make_event("/a/f"))
        index.matching(make_event("/b/f"))
        assert index.program_recompiles == 3

    def test_recompiles_survive_counter_reset(self):
        index = RuleIndex([make_rule()])
        index.matching(make_event("/d/f"))
        assert index.program_recompiles == 1
        index.reset_op_counters()
        assert index.program_recompiles == 1


# ---------------------------------------------------------------------------
# MOVED-event name semantics: the glob applies to the NEW name
# ---------------------------------------------------------------------------


class TestMovedNameSemantics:
    def test_glob_applies_to_new_name_only(self):
        rule = make_rule(
            prefix="/w", pattern="*.dat", event_types={EventType.MOVED}
        )
        index = RuleIndex([rule])
        hit = make_event(
            "/w/out.dat", EventType.MOVED, old_path="/w/out.tmp"
        )
        miss = make_event(
            "/w/out.tmp", EventType.MOVED, old_path="/w/out.dat"
        )
        assert index.matching(hit) == [rule]
        assert index.matching(miss) == []

    def test_old_path_walk_filters_on_new_name(self):
        # The rule watches the OLD subtree; the name filter still
        # applies to the destination basename (the file as it now is).
        rule = make_rule(
            prefix="/src", pattern="*.dat", event_types={EventType.MOVED}
        )
        index = RuleIndex([rule])
        hit = make_event(
            "/dst/f.dat", EventType.MOVED, old_path="/src/f.tmp"
        )
        miss = make_event(
            "/dst/f.tmp", EventType.MOVED, old_path="/src/f.dat"
        )
        assert index.matching(hit) == [rule]
        assert index.matching(miss) == []

    @settings(max_examples=60, deadline=None)
    @given(
        rule_specs=st.lists(_RULE_SPEC, max_size=10),
        path=_path_strategy(),
        old_path=_path_strategy(),
    )
    def test_moved_equivalence_when_basenames_disagree(
        self, rule_specs, path, old_path
    ):
        # The property the unit tests spot-check, in general: when the
        # move changes the basename, indexed and linear matching agree
        # (both apply the glob to the new name only).
        assume(path.rsplit("/", 1)[-1] != old_path.rsplit("/", 1)[-1])
        rules = _build(rule_specs)
        event = make_event(path, EventType.MOVED, old_path=old_path)
        assert rules.matching("a", event) == rules.matching_linear("a", event)


# ---------------------------------------------------------------------------
# Order-stamp stability under disabled adds and enable/disable flips
# ---------------------------------------------------------------------------


class TestOrderStampStability:
    def test_repeated_disabled_add_is_idempotent(self):
        # Re-adding a disabled rule must not advance the order clock:
        # its stamp is pinned on the first add, so enabling it later
        # lands at the original insertion position.
        r1 = make_rule(prefix="/d", enabled=False)
        index = RuleIndex()
        index.add(r1)
        index.add(r1)
        index.add(r1)
        r2 = make_rule(prefix="/d")
        index.add(r2)
        r1.enabled = True
        index.set_enabled(r1)
        assert index.matching(make_event("/d/f")) == [r1, r2]

    def test_enable_via_add_recovers_pinned_stamp(self):
        r1 = make_rule(prefix="/d", enabled=False)
        index = RuleIndex()
        index.add(r1)
        r2 = make_rule(prefix="/d")
        index.add(r2)
        r1.enabled = True
        index.add(r1)  # enabled add after a disabled add, no set_enabled
        assert index.matching(make_event("/d/f")) == [r1, r2]

    def test_disable_enable_round_trip_preserves_position(self):
        r1, r2, r3 = (make_rule(prefix="/d") for _ in range(3))
        index = RuleIndex([r1, r2, r3])
        r2.enabled = False
        index.set_enabled(r2)
        assert index.matching(make_event("/d/f")) == [r1, r3]
        r2.enabled = True
        index.set_enabled(r2)
        assert index.matching(make_event("/d/f")) == [r1, r2, r3]


# ---------------------------------------------------------------------------
# Consumer batch delivery + path filter (the index's feed)
# ---------------------------------------------------------------------------


def _pipeline(tag, **consumer_kwargs):
    context = Context()
    config = AggregatorConfig(
        inbound_endpoint=f"inproc://{tag}-in",
        publish_endpoint=f"inproc://{tag}-pub",
        api_endpoint=f"inproc://{tag}-rep",
    )
    aggregator = Aggregator(context, config)
    consumer = Consumer(context, consumer_kwargs.pop("callback"),
                        config=config, **consumer_kwargs)
    return aggregator, consumer


class TestConsumerBatchDelivery:
    def test_batch_callback_receives_whole_fresh_batches(self):
        batches = []
        aggregator, consumer = _pipeline(
            "rbatch", callback=lambda seq, ev: pytest.fail("per-event path"),
            batch_callback=batches.append,
        )
        aggregator._handle_batch(
            [make_event(p) for p in ["/a/f", "/a/g", "/b/h"]]
        )
        assert consumer.poll_once() == 3
        assert [[seq for seq, _ in batch] for batch in batches] == [[1, 2, 3]]
        assert consumer.events_consumed == 3

    def test_batch_callback_skips_duplicates(self):
        batches = []
        aggregator, consumer = _pipeline(
            "rdup", callback=lambda seq, ev: None,
            batch_callback=batches.append,
        )
        aggregator._handle_batch([make_event("/a/f"), make_event("/a/g")])
        consumer.poll_once()
        consumer.deliver_entries(
            [(1, make_event("/a/f")), (2, make_event("/a/g")),
             (3, make_event("/a/h"))]
        )
        assert [[seq for seq, _ in batch] for batch in batches] == [
            [1, 2], [3]
        ]
        assert consumer.duplicates_skipped == 2

    def test_path_prefix_filter_drops_other_subtrees(self):
        seen = []
        aggregator, consumer = _pipeline(
            "rpfx", callback=lambda seq, ev: seen.append(ev.path),
            path_prefix="/proj/ml",
        )
        aggregator._handle_batch(
            [make_event(p) for p in
             ["/proj/ml/a", "/proj/other/b", "/proj/ml/sub/c", "/scratch/d"]]
        )
        consumer.poll_once()
        assert seen == ["/proj/ml/a", "/proj/ml/sub/c"]
        assert consumer.events_filtered == 2
        # Filtered events still advance the watermark (no bogus catch-up).
        assert consumer.last_seq == 4

    def test_filtered_events_are_not_redelivered(self):
        seen = []
        aggregator, consumer = _pipeline(
            "rpfx2", callback=lambda seq, ev: seen.append(ev.path),
            path_prefix="/keep",
        )
        aggregator._handle_batch([make_event("/drop/a"), make_event("/keep/b")])
        consumer.poll_once()
        assert consumer.catch_up(api_server=aggregator) == 0
        assert seen == ["/keep/b"]


class TestAgentBatchIngest:
    def _agent_and_service(self):
        from repro.ripple.service import RippleService
        from repro.ripple.agent import RippleAgent

        service = RippleService()
        agent = RippleAgent("a")
        service.register_agent(agent)
        service.add_rule(
            Trigger(agent_id="a", path_prefix="/d", name_pattern="*.csv"),
            Action("email", "a"),
        )
        return agent, service

    def test_ingest_batch_matches_per_event_ingest(self):
        events = [
            make_event("/d/a.csv"), make_event("/d/b.txt"),
            make_event("/other/c.csv"), make_event("/d/sub/e.csv"),
        ]
        batch_agent, batch_service = self._agent_and_service()
        assert batch_agent.ingest_batch(events) == 2
        single_agent, single_service = self._agent_and_service()
        for event in events:
            single_agent.ingest_event(event)
        assert batch_agent.events_seen == single_agent.events_seen == 4
        assert batch_agent.events_matched == single_agent.events_matched == 2
        assert (
            batch_service.events_accepted == single_service.events_accepted
        )

    def test_op_counter_gauges_exposed(self):
        agent, _service = self._agent_and_service()
        agent.ingest_batch([make_event("/d/a.csv")])
        snapshot = agent.metrics.snapshot()
        assert snapshot["candidates_considered"] == 1
        assert snapshot["rules_evaluated"] == 1
