"""End-to-end property tests: the monitor's output matches ground truth.

The strongest invariant in the system: for ANY operation sequence, the
paths the monitor reports must be the paths the operations actually
touched, in order — regardless of batching, caching, read-batch sizes
or DNE layout.  This is what guards the path-cache invalidation logic
(a stale cache produces silently wrong paths, the worst failure mode a
monitoring system can have).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CollectorConfig, LustreMonitor, MonitorConfig, ProcessorConfig
from repro.core.events import EventType
from repro.lustre import DnePolicy, LustreFilesystem
from repro.util.clock import ManualClock

_dirnames = st.sampled_from(["d0", "d1", "d2"])
_filenames = st.sampled_from(["a", "b", "c"])

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("create"), _dirnames, _filenames),
        st.tuples(st.just("write"), _dirnames, _filenames),
        st.tuples(st.just("unlink"), _dirnames, _filenames),
        st.tuples(st.just("rename_file"), _dirnames, _filenames),
        st.tuples(st.just("rename_dir"), _dirnames, _filenames),
    ),
    max_size=40,
)

_processor_configs = st.sampled_from(
    [
        {"batch_size": 1, "cache_size": 0},
        {"batch_size": 8, "cache_size": 0},
        {"batch_size": 1, "cache_size": 4},
        {"batch_size": 8, "cache_size": 4},
        {"batch_size": 64, "cache_size": 512},
    ]
)


class TestMonitorPathsMatchGroundTruth:
    @settings(max_examples=50, deadline=None)
    @given(operations=_operations, processor=_processor_configs,
           read_batch=st.sampled_from([1, 3, 256]))
    def test_reported_paths_equal_applied_paths(
        self, operations, processor, read_batch
    ):
        fs = LustreFilesystem(
            clock=ManualClock(), num_mds=2, dne_policy=DnePolicy.HASH
        )
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(
                    read_batch=read_batch,
                    processor=ProcessorConfig(**processor),
                )
            ),
        )
        observed = []
        monitor.subscribe(
            lambda seq, ev: observed.append(
                (ev.event_type, ev.path, ev.old_path)
            )
        )
        # Apply operations, recording ground truth as we go.  Directory
        # names get version suffixes when renamed, so paths stay unique.
        expected = []
        dir_version = {name: 0 for name in ("d0", "d1", "d2")}

        def dirpath(name):
            version = dir_version[name]
            return f"/{name}" if version == 0 else f"/{name}.v{version}"

        for name in ("d0", "d1", "d2"):
            fs.mkdir(f"/{name}")
            expected.append((EventType.CREATED, f"/{name}", None))
        monitor.drain()

        # Drain after every operation: fid2path resolution then happens
        # while the namespace matches the record, so ground truth is
        # the operation-time path.  (A final-only drain would resolve
        # parents to their *current* paths — also correct behaviour,
        # but with different expectations; see the docstring.)  Caches
        # persist across drains, so directory renames processed in one
        # drain must invalidate entries used by the next — the exact
        # staleness hazard this property guards.
        for op, dname, fname in operations:
            base = dirpath(dname)
            path = f"{base}/{fname}"
            if op == "create":
                if not fs.exists(path):
                    fs.create(path)
                    expected.append((EventType.CREATED, path, None))
            elif op == "write":
                if fs.exists(path):
                    fs.write(path, 64)
                    expected.append((EventType.MODIFIED, path, None))
            elif op == "unlink":
                if fs.exists(path):
                    fs.unlink(path)
                    expected.append((EventType.DELETED, path, None))
            elif op == "rename_file":
                target = f"{base}/{fname}.renamed"
                if fs.exists(path) and not fs.exists(target):
                    fs.rename(path, target)
                    expected.append((EventType.MOVED, target, path))
            elif op == "rename_dir":
                old = dirpath(dname)
                dir_version[dname] += 1
                new = dirpath(dname)
                fs.rename(old, new)
                expected.append((EventType.MOVED, new, old))
            monitor.drain()
        # Cross-MDT renames may emit a companion RNMTO record; collapse
        # consecutive duplicates of the same move before comparing.
        deduped = []
        for entry in observed:
            if (
                deduped
                and entry[0] is EventType.MOVED
                and deduped[-1] == entry
            ):
                continue
            deduped.append(entry)
        assert deduped == expected
        assert monitor.stats().unresolved_events == 0
