"""Tests for If-Trigger-Then-Action rules."""

import pytest

from repro.core.events import EventType, FileEvent
from repro.errors import RuleValidationError
from repro.ripple.rules import Action, Rule, RuleSet, Trigger


def event(path, event_type=EventType.CREATED, is_dir=False, old_path=None):
    return FileEvent(
        event_type=event_type, path=path, is_dir=is_dir, timestamp=0.0,
        name=path.rsplit("/", 1)[-1] if path else "", source="inotify",
        old_path=old_path,
    )


class TestTrigger:
    def test_matches_created_under_prefix(self):
        trigger = Trigger(agent_id="a", path_prefix="/data")
        assert trigger.matches(event("/data/f.txt"))

    def test_rejects_outside_prefix(self):
        trigger = Trigger(agent_id="a", path_prefix="/data")
        assert not trigger.matches(event("/other/f.txt"))

    def test_rejects_wrong_event_type(self):
        trigger = Trigger(agent_id="a", path_prefix="/data")
        assert not trigger.matches(event("/data/f", EventType.DELETED))

    def test_custom_event_types(self):
        trigger = Trigger(
            agent_id="a", path_prefix="/data",
            event_types=frozenset({EventType.DELETED, EventType.MOVED}),
        )
        assert trigger.matches(event("/data/f", EventType.DELETED))
        assert trigger.matches(event("/data/f", EventType.MOVED))
        assert not trigger.matches(event("/data/f", EventType.CREATED))

    def test_name_pattern_glob(self):
        trigger = Trigger(agent_id="a", path_prefix="/d", name_pattern="*.tiff")
        assert trigger.matches(event("/d/scan.tiff"))
        assert not trigger.matches(event("/d/scan.jpg"))

    def test_directories_excluded_by_default(self):
        trigger = Trigger(agent_id="a", path_prefix="/d")
        assert not trigger.matches(event("/d/sub", is_dir=True))

    def test_directories_included_when_asked(self):
        trigger = Trigger(agent_id="a", path_prefix="/d",
                          include_directories=True)
        assert trigger.matches(event("/d/sub", is_dir=True))

    def test_prefix_normalized(self):
        trigger = Trigger(agent_id="a", path_prefix="/d//x/")
        assert trigger.path_prefix == "/d/x"

    def test_moved_event_matches_by_old_path(self):
        trigger = Trigger(
            agent_id="a", path_prefix="/watched",
            event_types=frozenset({EventType.MOVED}),
        )
        moved = event("/elsewhere/f", EventType.MOVED, old_path="/watched/f")
        assert trigger.matches(moved)

    def test_empty_agent_rejected(self):
        with pytest.raises(RuleValidationError):
            Trigger(agent_id="", path_prefix="/d")

    def test_empty_event_types_rejected(self):
        with pytest.raises(RuleValidationError):
            Trigger(agent_id="a", path_prefix="/d", event_types=frozenset())


class TestAction:
    def test_known_types_accepted(self):
        for action_type in ("transfer", "email", "container", "command",
                            "callable"):
            Action(action_type, "agent")

    def test_unknown_type_rejected(self):
        with pytest.raises(RuleValidationError):
            Action("teleport", "agent")

    def test_empty_agent_rejected(self):
        with pytest.raises(RuleValidationError):
            Action("email", "")


class TestRule:
    def test_rule_ids_unique(self):
        a = Rule(Trigger(agent_id="x", path_prefix="/d"), Action("email", "x"))
        b = Rule(Trigger(agent_id="x", path_prefix="/d"), Action("email", "x"))
        assert a.rule_id != b.rule_id

    def test_disabled_rule_never_matches(self):
        rule = Rule(
            Trigger(agent_id="x", path_prefix="/d"), Action("email", "x"),
            enabled=False,
        )
        assert not rule.matches(event("/d/f"))

    def test_describe_mentions_key_facts(self):
        rule = Rule(
            Trigger(agent_id="lab", path_prefix="/d", name_pattern="*.csv"),
            Action("transfer", "laptop"),
            name="replicate",
        )
        text = rule.describe()
        assert "replicate" in text
        assert "*.csv" in text
        assert "lab" in text
        assert "transfer" in text


class TestRuleSet:
    def _rule(self, agent="a", prefix="/d", pattern="*"):
        return Rule(
            Trigger(agent_id=agent, path_prefix=prefix, name_pattern=pattern),
            Action("email", agent),
        )

    def test_for_agent_indexes_by_trigger_agent(self):
        rules = RuleSet()
        rules.add(self._rule(agent="a"))
        rules.add(self._rule(agent="b"))
        assert len(rules.for_agent("a")) == 1
        assert len(rules.for_agent("missing")) == 0

    def test_matching_filters_by_event(self):
        rules = RuleSet()
        rules.add(self._rule(pattern="*.csv"))
        rules.add(self._rule(pattern="*.txt"))
        matched = rules.matching("a", event("/d/x.csv"))
        assert len(matched) == 1

    def test_remove(self):
        rules = RuleSet()
        rule = rules.add(self._rule())
        rules.remove(rule.rule_id)
        assert len(rules) == 0
        assert rules.for_agent("a") == []

    def test_remove_unknown_rejected(self):
        with pytest.raises(RuleValidationError):
            RuleSet().remove(12345)

    def test_get(self):
        rules = RuleSet()
        rule = rules.add(self._rule())
        assert rules.get(rule.rule_id) is rule
        with pytest.raises(RuleValidationError):
            rules.get(-1)

    def test_duplicate_add_rejected(self):
        rules = RuleSet()
        rule = rules.add(self._rule())
        with pytest.raises(RuleValidationError):
            rules.add(rule)

    def test_watched_prefixes_deduplicated(self):
        rules = RuleSet()
        rules.add(self._rule(prefix="/d", pattern="*.a"))
        rules.add(self._rule(prefix="/d", pattern="*.b"))
        rules.add(self._rule(prefix="/e"))
        assert rules.watched_prefixes("a") == ["/d", "/e"]

    def test_watched_prefixes_exclude_disabled_rules(self):
        rules = RuleSet()
        rules.add(self._rule(prefix="/live"))
        dormant = rules.add(self._rule(prefix="/dormant"))
        rules.set_enabled(dormant.rule_id, False)
        assert rules.watched_prefixes("a") == ["/live"]
        rules.set_enabled(dormant.rule_id, True)
        assert rules.watched_prefixes("a") == ["/dormant", "/live"]

    def test_remove_cleans_up_emptied_agent_bucket(self):
        rules = RuleSet()
        rule = rules.add(self._rule(agent="solo"))
        rules.matching("solo", event("/d/f"))  # force index build
        rules.remove(rule.rule_id)
        assert rules._by_agent == {}
        assert rules._indexes == {}

    def test_set_enabled_round_trip_restores_matching(self):
        rules = RuleSet()
        rule = rules.add(self._rule(pattern="*.csv"))
        probe = event("/d/x.csv")
        assert rules.matching("a", probe) == [rule]
        rules.set_enabled(rule.rule_id, False)
        assert rules.matching("a", probe) == []
        rules.set_enabled(rule.rule_id, True)
        assert rules.matching("a", probe) == [rule]

    def test_set_enabled_preserves_matching_order(self):
        rules = RuleSet()
        first = rules.add(self._rule(pattern="*"))
        second = rules.add(self._rule(pattern="*"))
        rules.set_enabled(first.rule_id, False)
        rules.set_enabled(first.rule_id, True)
        matched = rules.matching("a", event("/d/f"))
        assert matched == [first, second]

    def test_set_enabled_unknown_rejected(self):
        with pytest.raises(RuleValidationError):
            RuleSet().set_enabled(12345, False)

    def test_matching_agrees_with_linear_sweep(self):
        rules = RuleSet()
        rules.add(self._rule(prefix="/d", pattern="*.csv"))
        rules.add(self._rule(prefix="/d/sub", pattern="*"))
        rules.add(self._rule(prefix="/other", pattern="*"))
        disabled = rules.add(self._rule(prefix="/d", pattern="*"))
        rules.set_enabled(disabled.rule_id, False)
        for probe in (
            event("/d/x.csv"),
            event("/d/sub/y.txt"),
            event("/elsewhere/z"),
            event("/moved/f", EventType.MOVED, old_path="/d/sub/f"),
        ):
            assert rules.matching("a", probe) == rules.matching_linear(
                "a", probe
            )

    def test_iteration(self):
        rules = RuleSet()
        rules.add(self._rule())
        rules.add(self._rule(agent="b"))
        assert len(list(rules)) == 2
