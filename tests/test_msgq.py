"""Tests for the in-process message fabric."""

import threading

import pytest

from repro.errors import (
    AddressInUse,
    AddressNotFound,
    MessagingError,
    SocketClosed,
    WouldBlock,
)
from repro.msgq import Context


@pytest.fixture
def ctx():
    return Context()


class TestPubSub:
    def test_basic_publish_receive(self, ctx):
        pub = ctx.pub().bind("inproc://events")
        sub = ctx.sub().connect("inproc://events").subscribe("")
        pub.send("topic", {"x": 1})
        topic, payload = sub.recv(block=False)
        assert topic == "topic"
        assert payload == {"x": 1}

    def test_topic_prefix_filtering(self, ctx):
        pub = ctx.pub().bind("inproc://events")
        sub = ctx.sub().connect("inproc://events").subscribe("alerts.")
        pub.send("alerts.disk", "full")
        pub.send("metrics.cpu", "90")
        topic, payload = sub.recv(block=False)
        assert topic == "alerts.disk"
        with pytest.raises(WouldBlock):
            sub.recv(block=False)

    def test_unsubscribe(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        sub = ctx.sub().connect("inproc://e").subscribe("a")
        sub.unsubscribe("a")
        pub.send("abc", 1)
        with pytest.raises(WouldBlock):
            sub.recv(block=False)

    def test_fan_out_to_all_matching_subscribers(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        subs = [ctx.sub().connect("inproc://e").subscribe("") for _ in range(3)]
        matched = pub.send("t", "payload")
        assert matched == 3
        for sub in subs:
            assert sub.recv(block=False)[1] == "payload"

    def test_slow_joiner_misses_earlier_messages(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        pub.send("t", "early")
        sub = ctx.sub().connect("inproc://e").subscribe("")
        with pytest.raises(WouldBlock):
            sub.recv(block=False)

    def test_full_subscriber_drops_and_counts(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        sub = ctx.sub(hwm=2).connect("inproc://e").subscribe("")
        for index in range(5):
            pub.send("t", index)
        assert sub.pending == 2
        assert sub.dropped == 3

    def test_publisher_never_blocks(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        ctx.sub(hwm=1).connect("inproc://e").subscribe("")
        for index in range(100):  # would deadlock if PUB blocked
            pub.send("t", index)
        assert pub.published == 100

    def test_connect_to_wrong_socket_type_rejected(self, ctx):
        ctx.pull().bind("inproc://pipe")
        with pytest.raises(MessagingError):
            ctx.sub().connect("inproc://pipe")

    def test_blocking_recv_with_timeout(self, ctx):
        ctx.pub().bind("inproc://e")
        sub = ctx.sub().connect("inproc://e").subscribe("")
        with pytest.raises(WouldBlock):
            sub.recv(timeout=0.01)

    def test_cross_thread_delivery(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        sub = ctx.sub().connect("inproc://e").subscribe("")
        got = []

        def consumer():
            got.append(sub.recv(timeout=2.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        pub.send("t", "hello")
        thread.join(timeout=3)
        assert got == [("t", "hello")]


class TestPushPull:
    def test_basic_pipeline(self, ctx):
        pull = ctx.pull().bind("inproc://work")
        push = ctx.push().connect("inproc://work")
        push.send("job-1")
        assert pull.recv(block=False) == "job-1"

    def test_round_robin_across_sinks(self, ctx):
        pull_a = ctx.pull().bind("inproc://a")
        pull_b = ctx.pull().bind("inproc://b")
        push = ctx.push().connect("inproc://a").connect("inproc://b")
        for index in range(4):
            push.send(index)
        assert pull_a.pending == 2
        assert pull_b.pending == 2

    def test_fan_in_from_many_pushers(self, ctx):
        pull = ctx.pull().bind("inproc://sink")
        pushers = [ctx.push().connect("inproc://sink") for _ in range(3)]
        for index, push in enumerate(pushers):
            push.send(f"from-{index}")
        received = {pull.recv(block=False) for _ in range(3)}
        assert received == {"from-0", "from-1", "from-2"}

    def test_push_without_sinks_rejected(self, ctx):
        push = ctx.push()
        with pytest.raises(MessagingError):
            push.send("x")

    def test_push_blocks_then_times_out_when_full(self, ctx):
        ctx.pull(hwm=1).bind("inproc://sink")
        push = ctx.push().connect("inproc://sink")
        push.send("fits")
        with pytest.raises(WouldBlock):
            push.send("overflow", timeout=0.02)

    def test_requeue_puts_messages_back_in_front(self, ctx):
        pull = ctx.pull().bind("inproc://rq")
        push = ctx.push().connect("inproc://rq")
        for index in range(4):
            push.send(index)
        drained = pull.recv_many(block=False)
        assert drained == [0, 1, 2, 3]
        pull.requeue(drained[2:])
        push.send(4)
        # Requeued messages come back first, ahead of new arrivals.
        assert pull.recv_many(block=False) == [2, 3, 4]

    def test_requeue_bypasses_hwm_and_does_not_recount(self, ctx):
        pull = ctx.pull(hwm=2).bind("inproc://rq2")
        push = ctx.push().connect("inproc://rq2")
        push.send("a")
        push.send("b")
        drained = pull.recv_many(block=False)
        received_before = pull.received
        # A put at hwm would block; requeue of already-admitted
        # messages must not, and must not count them delivered twice.
        pull.requeue(drained)
        assert pull.pending == 2
        assert pull.received == received_before
        assert pull.recv_many(block=False) == ["a", "b"]

    def test_push_unblocks_when_space_frees(self, ctx):
        pull = ctx.pull(hwm=1).bind("inproc://sink")
        push = ctx.push().connect("inproc://sink")
        push.send("first")
        done = []

        def sender():
            push.send("second", timeout=2.0)
            done.append(True)

        thread = threading.Thread(target=sender)
        thread.start()
        assert pull.recv(timeout=1.0) == "first"
        thread.join(timeout=3)
        assert done == [True]
        assert pull.recv(timeout=1.0) == "second"


class TestReqRep:
    def test_request_reply(self, ctx):
        rep = ctx.rep().bind("inproc://api")
        req = ctx.req().connect("inproc://api")
        result = []

        def server():
            rep.serve_once(lambda request: request * 2, timeout=2.0)

        thread = threading.Thread(target=server)
        thread.start()
        result.append(req.request(21, timeout=2.0))
        thread.join(timeout=3)
        assert result == [42]

    def test_handler_exception_propagates_to_requester(self, ctx):
        rep = ctx.rep().bind("inproc://api")
        req = ctx.req().connect("inproc://api")

        def server():
            def handler(request):
                raise ValueError("bad request")

            rep.serve_once(handler, timeout=2.0)

        thread = threading.Thread(target=server)
        thread.start()
        with pytest.raises(ValueError, match="bad request"):
            req.request("x", timeout=2.0)
        thread.join(timeout=3)

    def test_unconnected_request_rejected(self, ctx):
        with pytest.raises(MessagingError):
            ctx.req().request("x")

    def test_serve_once_timeout_returns_false(self, ctx):
        rep = ctx.rep().bind("inproc://api")
        assert rep.serve_once(lambda r: r, timeout=0.01) is False

    def test_request_timeout(self, ctx):
        ctx.rep().bind("inproc://api")
        req = ctx.req().connect("inproc://api")
        with pytest.raises(WouldBlock):
            req.request("never answered", timeout=0.02)


class TestLifecycle:
    def test_double_bind_rejected(self, ctx):
        ctx.pub().bind("inproc://e")
        with pytest.raises(AddressInUse):
            ctx.pull().bind("inproc://e")

    def test_connect_to_unbound_rejected(self, ctx):
        with pytest.raises(AddressNotFound):
            ctx.sub().connect("inproc://nothing")

    def test_closed_socket_operations_rejected(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        pub.close()
        with pytest.raises(SocketClosed):
            pub.send("t", 1)

    def test_close_releases_endpoint(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        pub.close()
        ctx.pub().bind("inproc://e")  # rebinding now works

    def test_closed_subscriber_no_longer_receives(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        sub = ctx.sub().connect("inproc://e").subscribe("")
        sub.close()
        assert pub.send("t", 1) == 0

    def test_context_close_closes_all(self, ctx):
        pub = ctx.pub().bind("inproc://e")
        ctx.close()
        assert pub.closed
        with pytest.raises(MessagingError):
            ctx.pub().bind("inproc://f")

    def test_endpoints_listing(self, ctx):
        ctx.pub().bind("inproc://b")
        ctx.pull().bind("inproc://a")
        assert ctx.endpoints() == ["inproc://a", "inproc://b"]

    def test_socket_as_context_manager(self, ctx):
        with ctx.pub().bind("inproc://e") as pub:
            pass
        assert pub.closed
