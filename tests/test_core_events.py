"""Tests for the normalized event vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.core.events import RECORD_TYPE_MAP, EventType, FileEvent
from repro.fs.watchdog import FileSystemEvent
from repro.lustre.changelog import ChangelogFlag, ChangelogRecord, RecordType
from repro.lustre.fid import Fid

TARGET = Fid(0x200000402, 0xA046)
PARENT = Fid(0x200000007, 0x1)


def record(rec_type, name="f", source_parent=None, source_name=None):
    return ChangelogRecord(
        7, rec_type, 123.5, ChangelogFlag.NONE, TARGET, PARENT, name,
        source_parent_fid=source_parent, source_name=source_name,
    )


class TestFromChangelog:
    def test_create_maps_to_created(self):
        event = FileEvent.from_changelog(record(RecordType.CREAT), "/d/f", 0)
        assert event.event_type is EventType.CREATED
        assert event.path == "/d/f"
        assert not event.is_dir
        assert event.source == "lustre"
        assert event.record_type == "01CREAT"
        assert event.record_index == 7
        assert event.mdt_index == 0

    def test_mkdir_is_directory_created(self):
        event = FileEvent.from_changelog(record(RecordType.MKDIR), "/d", 1)
        assert event.event_type is EventType.CREATED
        assert event.is_dir

    def test_unlink_maps_to_deleted(self):
        event = FileEvent.from_changelog(record(RecordType.UNLNK), "/d/f", 0)
        assert event.event_type is EventType.DELETED

    def test_close_maps_to_modified(self):
        event = FileEvent.from_changelog(record(RecordType.CLOSE), "/d/f", 0)
        assert event.event_type is EventType.MODIFIED

    def test_sattr_maps_to_attrib(self):
        event = FileEvent.from_changelog(record(RecordType.SATTR), "/d/f", 0)
        assert event.event_type is EventType.ATTRIB

    def test_rename_carries_old_path(self):
        event = FileEvent.from_changelog(
            record(RecordType.RENME, name="new", source_parent=PARENT,
                   source_name="old"),
            "/d/new", 0, old_path="/d/old",
        )
        assert event.event_type is EventType.MOVED
        assert event.old_path == "/d/old"
        assert event.path == "/d/new"

    def test_unresolved_path_allowed(self):
        event = FileEvent.from_changelog(record(RecordType.UNLNK), None, 0)
        assert not event.resolved
        assert event.name == "f"

    def test_fids_serialised_short_form(self):
        event = FileEvent.from_changelog(record(RecordType.CREAT), "/f", 0)
        assert event.fid == TARGET.short()
        assert event.parent_fid == PARENT.short()

    def test_every_record_type_is_mapped(self):
        for rec_type in RecordType:
            assert rec_type in RECORD_TYPE_MAP


class TestFromWatchdog:
    def test_created(self):
        raw = FileSystemEvent("created", "/w/f.txt", False, 5.0)
        event = FileEvent.from_watchdog(raw)
        assert event.event_type is EventType.CREATED
        assert event.path == "/w/f.txt"
        assert event.name == "f.txt"
        assert event.source == "inotify"
        assert event.fid is None

    def test_moved_uses_dest_as_path(self):
        raw = FileSystemEvent("moved", "/w/a", False, 5.0, dest_path="/w/b")
        event = FileEvent.from_watchdog(raw)
        assert event.path == "/w/b"
        assert event.old_path == "/w/a"
        assert event.event_type is EventType.MOVED

    def test_directory_flag_preserved(self):
        raw = FileSystemEvent("created", "/w/d", True, 5.0)
        assert FileEvent.from_watchdog(raw).is_dir


class TestSerialisation:
    def test_to_dict_is_json_safe(self):
        import json

        event = FileEvent.from_changelog(record(RecordType.CREAT), "/f", 0)
        json.dumps(event.to_dict())  # must not raise

    def test_roundtrip(self):
        event = FileEvent.from_changelog(
            record(RecordType.RENME, source_parent=PARENT, source_name="o"),
            "/d/f", 2, old_path="/d/o",
        )
        assert FileEvent.from_dict(event.to_dict()) == event

    @given(
        event_type=st.sampled_from(list(EventType)),
        path=st.one_of(st.none(), st.just("/a/b")),
        is_dir=st.booleans(),
        timestamp=st.floats(0, 1e9, allow_nan=False),
    )
    def test_roundtrip_property(self, event_type, path, is_dir, timestamp):
        event = FileEvent(
            event_type=event_type, path=path, is_dir=is_dir,
            timestamp=timestamp, name="n", source="lustre",
        )
        assert FileEvent.from_dict(event.to_dict()) == event


class TestMatchesPrefix:
    def _event(self, path, old_path=None):
        return FileEvent(
            event_type=EventType.CREATED, path=path, is_dir=False,
            timestamp=0.0, name="f", source="lustre", old_path=old_path,
        )

    def test_exact_match(self):
        assert self._event("/a/b").matches_prefix("/a/b")

    def test_child_match(self):
        assert self._event("/a/b/c").matches_prefix("/a/b")

    def test_sibling_prefix_no_match(self):
        assert not self._event("/a/bc").matches_prefix("/a/b")

    def test_root_matches_everything(self):
        assert self._event("/anything").matches_prefix("/")

    def test_old_path_also_considered(self):
        event = self._event("/elsewhere/f", old_path="/watched/f")
        assert event.matches_prefix("/watched")

    def test_unresolved_path_no_match(self):
        assert not self._event(None).matches_prefix("/a")
