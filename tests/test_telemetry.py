"""Tests for the operator telemetry plane.

Covers the relay (child→parent registry merge with epoch offset
tracking), the alert-rule engine (grammar, state machine, ratio/rate/
absence kinds), the flight recorder (ring, dumps, crash triggers), the
HTTP exposition server, plane assembly — and the acceptance scenario:
SIGKILL a multiproc shard child under load, then verify one HTTP
scrape shows the respawned child's store/pipeline series with
monotone-continued counters while ``/alerts`` walks the
``child-restarts`` alert through firing→resolved.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.runtime import Supervisor
from repro.telemetry import (
    AlertEvaluator,
    AlertRule,
    FlightRecorder,
    RegistryRelay,
    TelemetryConfig,
    TelemetryPlane,
    TelemetryServer,
    decode_state,
    encode_state,
    parse_rule,
    recommended_rules,
)


def fetch(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        body = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return json.loads(body)
    return body


def wait_for(predicate, timeout: float = 15.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# Relay
# ---------------------------------------------------------------------------


def child_registry(scope_base: str = "s0") -> tuple[MetricsRegistry, str]:
    registry = MetricsRegistry()
    scope = registry.unique_scope(scope_base)
    return registry, scope


class TestRegistryRelay:
    def test_counters_gauges_histograms_merge_under_scope(self):
        child, scope = child_registry()
        child.counter(f"{scope}.events_stored").inc(5)
        child.gauge(f"{scope}.depth").set(9)
        child.histogram("pipeline.aggregate").record(0.001, 4)
        parent = MetricsRegistry()
        relay = RegistryRelay(parent, "shard0", strip_scopes=(scope,))
        applied = relay.merge(child.export_state(), epoch=1)
        assert applied > 0
        snapshot = parent.snapshot()
        assert snapshot["shard0.events_stored"] == 5
        assert snapshot["shard0.depth"] == 9
        # Unscoped child series nest under the bridge scope.
        assert "shard0.pipeline.aggregate" in parent.export_state()[
            "histograms"
        ]

    def test_encode_decode_roundtrip(self):
        child, scope = child_registry()
        child.counter(f"{scope}.n").inc(3)
        child.histogram(f"{scope}.h").record(0.01, 2)
        state = decode_state(encode_state(child.export_state()))
        assert state["counters"][f"{scope}.n"] == 3
        assert state["histograms"][f"{scope}.h"]["total"] == 2

    def test_counters_resume_monotone_across_epochs(self):
        parent = MetricsRegistry()
        relay = RegistryRelay(parent, "shard0", strip_scopes=("s0",))
        first, scope = child_registry()
        first.counter(f"{scope}.events_stored").inc(10)
        relay.merge(first.export_state(), epoch=1)
        assert parent.counter("shard0.events_stored").value == 10
        # Respawn: the new incarnation starts from zero.
        second, scope = child_registry()
        second.counter(f"{scope}.events_stored").inc(3)
        relay.merge(second.export_state(), epoch=2)
        assert parent.counter("shard0.events_stored").value == 13
        second.counter(f"{scope}.events_stored").inc(2)
        relay.merge(second.export_state(), epoch=2)
        assert parent.counter("shard0.events_stored").value == 15

    def test_histogram_buckets_fold_across_epochs(self):
        parent = MetricsRegistry()
        relay = RegistryRelay(parent, "shard0", strip_scopes=("s0",))
        first, scope = child_registry()
        first.histogram("pipeline.publish").record(0.001, 6)
        relay.merge(first.export_state(), epoch=1)
        second, scope = child_registry()
        second.histogram("pipeline.publish").record(0.002, 4)
        relay.merge(second.export_state(), epoch=2)
        merged = parent.export_state()["histograms"][
            "shard0.pipeline.publish"
        ]
        assert merged["total"] == 10
        assert sum(merged["counts"]) == 10

    def test_parent_local_series_shadow_relayed_ones(self):
        parent = MetricsRegistry()
        parent.gauge("shard0.depth").set(42)
        relay = RegistryRelay(parent, "shard0", strip_scopes=("s0",))
        child, scope = child_registry()
        child.gauge(f"{scope}.depth").set(7)
        child.gauge(f"{scope}.other").set(8)
        relay.merge(child.export_state(), epoch=1)
        snapshot = parent.snapshot()
        assert snapshot["shard0.depth"] == 42
        assert snapshot["shard0.other"] == 8

    def test_relayed_exposition_conforms(self):
        from tests.test_prometheus_conformance import check_exposition

        parent = MetricsRegistry()
        bridge_scope = parent.unique_scope("shard0")
        parent.counter(f"{bridge_scope}.batches_received").inc(2)
        relay = RegistryRelay(parent, bridge_scope, strip_scopes=("s0",))
        child, scope = child_registry()
        child.counter(f"{scope}.api_requests").inc(4)
        child.histogram("pipeline.publish").record(0.001, 3)
        relay.merge(child.export_state(), epoch=1)
        text = parent.render_prometheus()
        check_exposition(text)
        assert 'repro_api_requests_total{scope="shard0"} 4' in text


# ---------------------------------------------------------------------------
# Alert rules
# ---------------------------------------------------------------------------


class TestAlertRuleParsing:
    def test_threshold_with_ratio_and_duration(self):
        rule = parse_rule(
            "pressure: *.inbound_depth / *.inbound_hwm > 0.8 for 10s"
        )
        assert rule.name == "pressure"
        assert rule.kind == "threshold"
        assert rule.metric == "*.inbound_depth"
        assert rule.divisor == "*.inbound_hwm"
        assert rule.op == ">"
        assert rule.threshold == 0.8
        assert rule.duration == 10.0

    def test_rate_rule(self):
        rule = parse_rule("restarts: rate(*.child_restarts) > 0")
        assert rule.kind == "rate"
        assert rule.metric == "*.child_restarts"
        assert rule.duration == 0.0

    def test_absence_rule(self):
        rule = parse_rule("stale: absent(*.events_stored) for 30s")
        assert rule.kind == "absence"
        assert rule.duration == 30.0

    def test_name_defaults_from_condition(self):
        rule = parse_rule("*.credits <= 0")
        assert rule.metric == "*.credits"
        assert rule.op == "<="
        assert rule.name

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rule("not a rule at all!!!")

    def test_rejects_rate_with_divisor(self):
        with pytest.raises(ValueError):
            parse_rule("rate(*.a) / *.b > 0")

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", op="~")

    def test_spec_round_trips_readably(self):
        assert (
            parse_rule("p: *.depth / *.hwm > 0.8 for 5s").spec()
            == "*.depth / *.hwm > 0.8 for 5s"
        )

    def test_recommended_rules_cover_runbook_failures(self):
        names = {rule.name for rule in recommended_rules()}
        assert {
            "shard-inbound-pressure",
            "credit-exhaustion",
            "child-restarts",
            "store-fsync-lag",
        } <= names


class TestAlertEvaluator:
    def _evaluator(self, rules, registry=None):
        registry = registry or MetricsRegistry()
        return registry, AlertEvaluator(registry, rules=tuple(rules))

    def test_threshold_pending_then_firing_then_resolved(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth / *.hwm > 0.8 for 5s")]
        )
        registry.gauge("shard0.depth").set(90)
        registry.gauge("shard0.hwm").set(100)
        assert evaluator.evaluate_once(now=0.0) == 0  # pending
        assert evaluator.evaluate_once(now=2.0) == 0  # still pending
        assert evaluator.evaluate_once(now=5.0) == 1  # fired
        registry.gauge("shard0.depth").set(10)
        assert evaluator.evaluate_once(now=6.0) == 0
        (instance,) = [
            record for record in evaluator.alerts()["instances"]
            if record["rule"] == "hot"
        ]
        assert instance["state"] == "resolved"
        assert instance["series"] == "shard0.depth"

    def test_ratio_pairs_series_per_shard(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth / *.hwm > 0.8")]
        )
        registry.gauge("shard0.depth").set(90)
        registry.gauge("shard0.hwm").set(100)
        registry.gauge("shard1.depth").set(5)
        registry.gauge("shard1.hwm").set(100)
        assert evaluator.evaluate_once(now=0.0) == 1
        firing = [
            record for record in evaluator.alerts()["instances"]
            if record["state"] == "firing"
        ]
        assert [record["series"] for record in firing] == ["shard0.depth"]

    def test_zero_divisor_never_breaches(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth / *.hwm > 0.8")]
        )
        registry.gauge("shard0.depth").set(90)
        registry.gauge("shard0.hwm").set(0)
        assert evaluator.evaluate_once(now=0.0) == 0

    def test_rate_fires_on_increase_and_resolves_when_flat(self):
        registry, evaluator = self._evaluator(
            [parse_rule("restarts: rate(*.child_restarts) > 0")]
        )
        counter = registry.counter("shard0.child_restarts")
        evaluator.evaluate_once(now=0.0)  # primes the previous sample
        counter.inc()
        assert evaluator.evaluate_once(now=1.0) == 1
        assert evaluator.evaluate_once(now=2.0) == 0
        states = [
            record["state"] for record in evaluator.history
            if record["rule"] == "restarts"
        ]
        assert states == ["firing", "resolved"]

    def test_absence_fires_when_no_series_matches(self):
        registry, evaluator = self._evaluator(
            [parse_rule("gone: absent(*.heartbeat) for 2s")]
        )
        assert evaluator.evaluate_once(now=0.0) == 0  # pending
        assert evaluator.evaluate_once(now=2.5) == 1  # fired
        registry.gauge("svc.heartbeat").set(1)
        assert evaluator.evaluate_once(now=3.0) == 0
        (instance,) = evaluator.alerts()["instances"]
        assert instance["state"] == "resolved"

    def test_firing_count_exported_as_root_gauge(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth > 5")]
        )
        registry.gauge("shard0.depth").set(10)
        evaluator.evaluate_once(now=0.0)
        assert registry.snapshot()["alerts_firing"] == 1
        assert "repro_alerts_firing 1" in registry.render_prometheus()

    def test_transition_callbacks_fire_and_broken_sinks_are_counted(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth > 5")]
        )
        seen = []

        def broken(record, old, new):
            raise RuntimeError("sink down")

        evaluator.on_transition.append(broken)
        evaluator.on_transition.append(
            lambda record, old, new: seen.append((old, new))
        )
        registry.gauge("shard0.depth").set(10)
        evaluator.evaluate_once(now=0.0)
        assert seen == [("ok", "firing")]
        assert evaluator.metrics.value("callback_errors") == 1

    def test_history_is_bounded(self):
        registry, evaluator = self._evaluator(
            [parse_rule("hot: *.depth > 5")], MetricsRegistry()
        )
        evaluator.history = type(evaluator.history)(maxlen=4)
        gauge = registry.gauge("shard0.depth")
        for tick in range(10):
            gauge.set(10 if tick % 2 == 0 else 0)
            evaluator.evaluate_once(now=float(tick))
        assert len(evaluator.history) == 4


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_dump_writes_frames(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        recorder = FlightRecorder(
            registry, directory=str(tmp_path), capacity=3
        )
        for tick in range(5):
            counter.inc()
            recorder.tick(now=float(tick))
        path = recorder.dump("unit-test", now=10.0)
        assert path is not None
        payload = json.loads(open(path).read())
        assert payload["reason"] == "unit-test"
        assert len(payload["frames"]) == 3  # capacity bound
        assert payload["frames"][-1]["metrics"]["events"] == 5

    def test_cooldown_suppresses_repeat_dumps(self, tmp_path):
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            registry, directory=str(tmp_path), cooldown=5.0
        )
        assert recorder.dump("flap", now=0.0) is not None
        assert recorder.dump("flap", now=2.0) is None
        assert recorder.dump("flap", now=6.0) is not None
        assert recorder.dump("other", now=6.5) is not None

    def test_alert_hook_dumps_on_firing_only(self, tmp_path):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry, directory=str(tmp_path))
        recorder.on_alert({"rule": "hot"}, "pending", "firing")
        recorder.on_alert({"rule": "hot"}, "firing", "resolved")
        assert len(recorder.dumps) == 1
        assert "alert-hot" in recorder.dumps[0]

    def test_crash_and_restart_in_health_trigger_dumps(self, tmp_path):
        registry = MetricsRegistry()
        health = {
            "services": {
                "agg": {"state": "running", "restart_count": 0},
            }
        }
        recorder = FlightRecorder(
            registry, directory=str(tmp_path),
            health_provider=lambda: health, cooldown=0.0,
        )
        assert recorder.tick(now=0.0) == 0
        health["services"]["agg"] = {"state": "crashed", "restart_count": 0}
        assert recorder.tick(now=1.0) == 1  # crash dump
        assert recorder.tick(now=2.0) == 0  # not re-dumped while crashed
        health["services"]["agg"] = {"state": "running", "restart_count": 1}
        assert recorder.tick(now=3.0) == 1  # restart dump
        reasons = [path.rsplit("-", 1)[-1] for path in recorder.dumps]
        assert len(recorder.dumps) == 2
        assert any("crash" in path for path in recorder.dumps)
        assert any("restart" in path for path in recorder.dumps)

    def test_lazy_temp_directory(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry)
        assert recorder.directory is None
        path = recorder.dump("lazy")
        assert path is not None and recorder.directory in path


# ---------------------------------------------------------------------------
# HTTP server + plane
# ---------------------------------------------------------------------------


class TestTelemetryServer:
    def test_metrics_health_alerts_flight_and_404(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        health = {"state": "running", "services": {}}
        server = TelemetryServer(
            registry,
            health_provider=lambda: health,
            alerts_provider=lambda: {"firing": 0, "instances": []},
            flight_provider=lambda: {"dumps": [], "depth": 2},
        )
        server.start()
        try:
            url = server.url
            body = fetch(url + "/metrics")
            assert "repro_requests_total 3" in body
            assert fetch(url + "/health")["state"] == "running"
            assert fetch(url + "/alerts")["firing"] == 0
            assert fetch(url + "/flight")["depth"] == 2
            assert "/metrics" in fetch(url + "/")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(url + "/nope")
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_health_degrades_to_503_on_crashed_service(self):
        registry = MetricsRegistry()
        health = {
            "state": "running",
            "services": {"agg": {"state": "crashed"}},
        }
        server = TelemetryServer(registry, health_provider=lambda: health)
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url + "/health")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["degraded"] is True
        finally:
            server.close()

    def test_metrics_content_type_and_scrape_counter(self):
        registry = MetricsRegistry()
        server = TelemetryServer(registry)
        server.start()
        try:
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5.0
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
            assert wait_for(lambda: server.scrapes.value == 1)
        finally:
            server.close()

    def test_port_is_resolved_before_start(self):
        server = TelemetryServer(MetricsRegistry())
        try:
            assert server.port > 0
        finally:
            server.close()


class TestTelemetryPlane:
    def test_assembles_and_registers_under_supervisor(self):
        registry = MetricsRegistry()
        supervisor = Supervisor("tree", registry=registry)
        plane = TelemetryPlane(
            registry,
            TelemetryConfig(rules=("custom: *.depth > 5",)),
            health_provider=supervisor.health,
        )
        plane.add_to(supervisor)
        names = {service.name for service in supervisor.children()}
        assert {"alerts", "flight-recorder", "telemetry-server"} <= names
        rule_names = {rule.name for rule in plane.evaluator.rules}
        assert "custom" in rule_names
        assert "child-restarts" in rule_names  # recommended included
        plane.close()

    def test_recommended_rules_can_be_disabled(self):
        plane = TelemetryPlane(
            MetricsRegistry(), TelemetryConfig(recommended=False)
        )
        assert plane.evaluator.rules == []
        plane.close()

    def test_alert_firing_reaches_recorder(self, tmp_path):
        registry = MetricsRegistry()
        plane = TelemetryPlane(
            registry,
            TelemetryConfig(
                rules=("hot: *.depth > 5",),
                recommended=False,
                flight_dir=str(tmp_path),
            ),
        )
        registry.gauge("shard0.depth").set(10)
        plane.evaluator.evaluate_once(now=0.0)
        assert len(plane.recorder.dumps) == 1
        assert "alert-hot" in plane.recorder.dumps[0]
        plane.close()


# ---------------------------------------------------------------------------
# Acceptance: SIGKILL a multiproc shard child under load
# ---------------------------------------------------------------------------


class TestMultiprocScrapeAcceptance:
    def _build(self, tmp_path):
        from repro.cluster import ClusterConfig, ClusterMonitor
        from repro.lustre import LustreFilesystem
        from repro.lustre.mds import DnePolicy

        fs = LustreFilesystem(
            num_mds=2, mdts_per_mds=2, dne_policy=DnePolicy.ROUND_ROBIN
        )
        cluster = ClusterMonitor(
            fs,
            ClusterConfig(
                num_shards=2,
                transport="multiproc",
                telemetry=TelemetryConfig(
                    eval_interval=0.05,
                    flight_dir=str(tmp_path),
                    flight_interval=0.1,
                ),
            ),
        )
        return fs, cluster

    def _scrape(self, cluster) -> str:
        return fetch(cluster.telemetry.url + "/metrics")

    def _relayed_counts(self, exposition: str, shard_id: str) -> dict:
        """Child-relayed series of one shard: pipeline publish counts
        and api/store series, keyed by family."""
        values = {}
        for line in exposition.splitlines():
            if line.startswith("#") or f'scope="{shard_id}"' not in line:
                continue
            name = line.split("{", 1)[0]
            if name in (
                "repro_pipeline_publish_count",
                "repro_api_requests_total",
                "repro_store_last_seq",
            ):
                values[name] = float(line.rsplit(" ", 1)[1])
        return values

    def _load(self, fs, start: int, count: int) -> None:
        # Spread across directories: routing hashes by location, so a
        # single directory would land every event on one shard.
        for index in range(start, start + count):
            fs.create(f"/proj/d{index % 8}/f{index}.dat")

    def test_scrape_survives_child_sigkill_with_monotone_series(
        self, tmp_path
    ):
        fs, cluster = self._build(tmp_path)
        cluster.subscribe(lambda _seq, _event: None)
        for index in range(8):
            fs.makedirs(f"/proj/d{index}")
        cluster.start()
        try:
            self._load(fs, 0, 60)
            assert wait_for(lambda: cluster.stats().events_stored >= 60)
            # Target the busiest shard — the one whose child certainly
            # processed events before the kill.
            per_shard = cluster.stats().per_shard
            shard_id = max(
                per_shard, key=lambda sid: per_shard[sid]["events_stored"]
            )
            bridge = cluster.bridges[shard_id]

            # Wait until a relay frame *after* the load landed — the
            # first frame ships at child start with everything at zero.
            def relayed_ready():
                counts = self._relayed_counts(
                    self._scrape(cluster), shard_id
                )
                return (
                    counts.get("repro_store_last_seq", 0) > 0
                    and counts.get("repro_pipeline_publish_count", 0) > 0
                )

            assert wait_for(relayed_ready)
            before = self._relayed_counts(self._scrape(cluster), shard_id)

            # SIGKILL the child under continued load.
            bridge.kill_child()
            self._load(fs, 60, 60)
            assert wait_for(lambda: cluster.stats().events_stored >= 120)
            assert wait_for(
                lambda: self._relayed_counts(
                    self._scrape(cluster), shard_id
                ).get("repro_pipeline_publish_count", 0)
                > before["repro_pipeline_publish_count"]
            )

            # ONE scrape: respawned child's series present, counters
            # monotone (gauges like store_last_seq may legitimately
            # reset with the fresh child store — presence suffices).
            exposition = self._scrape(cluster)
            after = self._relayed_counts(exposition, shard_id)
            assert set(before) <= set(after)
            for family, value in before.items():
                if family == "repro_store_last_seq":
                    continue
                assert after[family] >= value, (
                    f"{family} regressed: {value} -> {after[family]}"
                )
            assert after["repro_pipeline_publish_count"] > before[
                "repro_pipeline_publish_count"
            ]
            assert (
                f'repro_child_restarts_total{{scope="{shard_id}"}} 1'
                in exposition
            )

            # /alerts walked child-restarts through firing -> resolved.
            def restart_states():
                return [
                    record["state"]
                    for record in fetch(
                        cluster.telemetry.url + "/alerts"
                    )["history"]
                    if record["rule"] == "child-restarts"
                ]

            assert wait_for(lambda: "firing" in restart_states())
            assert wait_for(lambda: "resolved" in restart_states())

            # The firing alert also produced a flight-recorder dump.
            flight = fetch(cluster.telemetry.url + "/flight")
            assert any(
                "child-restarts" in path for path in flight["dumps"]
            )
        finally:
            cluster.shutdown()

    def test_exposition_with_relay_passes_conformance(self, tmp_path):
        from tests.test_prometheus_conformance import check_exposition

        fs, cluster = self._build(tmp_path)
        cluster.subscribe(lambda _seq, _event: None)
        fs.makedirs("/proj")
        cluster.start()
        try:
            for index in range(30):
                fs.create(f"/proj/f{index}.dat")
            assert wait_for(lambda: cluster.stats().events_stored >= 30)
            assert wait_for(
                lambda: all(
                    bridge.relay_merges > 0
                    for bridge in cluster.bridges.values()
                )
            )
            check_exposition(self._scrape(cluster))
        finally:
            cluster.shutdown()


class TestDeterministicBridgeRelay:
    """Deterministic (pump-driven) relay via request_metrics()."""

    def test_request_metrics_round_trip(self):
        from repro.core.aggregator import AggregatorConfig
        from repro.msgq.multiproc import MultiprocTransport

        registry = MetricsRegistry()
        transport = MultiprocTransport()
        config = AggregatorConfig(
            inbound_endpoint="inproc://tr.reports",
            publish_endpoint="inproc://tr.events",
            api_endpoint="inproc://tr.api",
        )
        bridge = transport.process_shard(
            "shard0", config, registry=registry, relay_interval=0.0
        )
        try:
            assert bridge.request_metrics()
            assert wait_for(
                lambda: bridge.pump_once() is not None
                and bridge.relay_merges > 0
            )
            assert "shard0.store_last_seq" in registry.snapshot()
        finally:
            transport.close()
