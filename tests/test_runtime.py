"""Tests for the service runtime: lifecycle, supervision, metrics.

Covers the Service/Supervisor contracts directly, plus the two
regressions the runtime was built to prevent: shutdown losing in-flight
events (stop ordering) and a crashed collector wedging the pipeline
(supervised restart with no event loss).
"""

import threading
import time

import pytest

from repro.core import LustreMonitor, MonitorConfig
from repro.lustre import LustreFilesystem
from repro.metrics import MetricsRegistry
from repro.runtime import (
    RestartPolicy,
    Service,
    ServiceCrash,
    Supervisor,
    WorkerSpec,
)
from repro.util.clock import ManualClock


class Ticker(Service):
    """A minimal service: one worker appending to a list."""

    def __init__(self, name="ticker", registry=None, fail_after=None):
        super().__init__(name, registry)
        self.ticks = []
        self.fail_after = fail_after
        self.started_hooks = 0
        self.stopped_hooks = 0
        self.closed_hooks = 0

    def tick(self):
        if self.fail_after is not None and len(self.ticks) >= self.fail_after:
            raise ServiceCrash("injected")
        self.ticks.append(len(self.ticks))
        return 1

    def worker_specs(self):
        return [WorkerSpec("tick", self.tick, idle_wait=0.001)]

    def on_start(self):
        self.started_hooks += 1

    def on_stop(self):
        self.stopped_hooks += 1

    def on_close(self):
        self.closed_hooks += 1


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestServiceLifecycle:
    def test_double_start_is_noop(self):
        service = Ticker()
        service.start()
        threads = list(service._worker_threads)
        service.start()  # must not spawn a second set of workers
        assert service._worker_threads == threads
        assert service.started_hooks == 1
        service.close()

    def test_stop_joins_workers_and_flushes(self):
        service = Ticker()
        service.start()
        assert wait_for(lambda: len(service.ticks) > 0)
        service.stop()
        assert service.stopped_hooks == 1
        assert service.state.value == "stopped"
        assert service.health()["workers"] == []
        count = len(service.ticks)
        time.sleep(0.02)
        assert len(service.ticks) == count  # workers really stopped

    def test_stop_without_start_is_noop(self):
        service = Ticker()
        service.stop()
        assert service.stopped_hooks == 0
        assert service.state.value == "new"

    def test_close_after_stop_is_safe_and_once_only(self):
        service = Ticker()
        service.start()
        service.stop()
        service.close()
        service.close()
        assert service.closed_hooks == 1
        with pytest.raises(ServiceCrash):
            service.start()  # closed services cannot restart

    def test_crash_marks_state_and_records_error(self):
        service = Ticker(fail_after=3)
        service.start()
        assert wait_for(lambda: service.crashed)
        assert "injected" in repr(service.last_error)
        assert service.stats()["crashes"] == 1
        service.close()

    def test_periodic_worker_waits_between_steps(self):
        class Sweeper(Service):
            def __init__(self):
                super().__init__("sweeper")
                self.sweeps = 0

            def worker_specs(self):
                return [WorkerSpec("sweep", self.sweep, interval=10.0)]

            def sweep(self):
                self.sweeps += 1

        sweeper = Sweeper()
        sweeper.start()
        time.sleep(0.05)
        sweeper.stop()
        # A 10s-period sweeper never fires in 50ms — and stop does not
        # block for the rest of the period.
        assert sweeper.sweeps == 0


class TestSupervisor:
    def test_start_and_stop_follow_dependency_order(self):
        log = []

        class Probe(Service):
            def __init__(self, name):
                super().__init__(name)

            def on_start(self):
                log.append(("start", self.name))

            def on_stop(self):
                log.append(("stop", self.name))

        supervisor = Supervisor("sup")
        supervisor.add_child(Probe("aggregator"))
        supervisor.add_child(Probe("collector"), after=["aggregator"])
        supervisor.add_child(Probe("consumer"), before=["aggregator"])
        supervisor.start()
        supervisor.stop()
        starts = [name for verb, name in log if verb == "start"]
        stops = [name for verb, name in log if verb == "stop"]
        assert starts == ["consumer", "aggregator", "collector"]
        assert stops == list(reversed(starts))

    def test_unknown_dependency_rejected(self):
        supervisor = Supervisor("sup")
        with pytest.raises(ValueError):
            supervisor.add_child(Ticker("a"), after=["nope"])

    def test_cycle_detected(self):
        supervisor = Supervisor("sup")
        a = supervisor.add_child(Ticker("a"))
        b = supervisor.add_child(Ticker("b"), after=[a])
        supervisor._children[a].after.append(b)  # force a cycle
        with pytest.raises(ValueError, match="cycle"):
            supervisor._start_order()

    def test_duplicate_names_get_unique_keys(self):
        supervisor = Supervisor("sup")
        first = supervisor.add_child(Ticker("worker"))
        second = supervisor.add_child(Ticker("worker"))
        assert first == "worker"
        assert second == "worker#2"
        assert supervisor.child(second) is not supervisor.child(first)

    def test_crashed_child_restarted_with_backoff(self):
        registry = MetricsRegistry()
        policy = RestartPolicy(max_restarts=3, backoff_base=1.0)
        supervisor = Supervisor("sup", policy=policy, registry=registry)
        child = Ticker("flaky", fail_after=2)
        supervisor.add_child(child)
        child.start()
        assert wait_for(lambda: child.crashed)
        # Deterministic supervision: first sweep schedules the backoff,
        # nothing restarts before the window elapses.
        assert supervisor.supervise_once(now=100.0) == 0
        assert child.crashed
        assert supervisor.supervise_once(now=100.5) == 0
        # Past the 1s backoff the child comes back.
        child.fail_after = None  # "fixed" across the restart
        assert supervisor.supervise_once(now=101.1) == 1
        assert child.running
        assert child.restart_count == 1
        assert supervisor.stats()["restarts"] == 1
        supervisor.close()

    def test_supervisor_gives_up_after_max_restarts(self):
        policy = RestartPolicy(max_restarts=2, backoff_base=0.0)
        supervisor = Supervisor("sup", policy=policy)
        child = Ticker("doomed", fail_after=0)
        supervisor.add_child(child)
        child.start()
        now = 0.0
        for _ in range(20):
            if supervisor._children["doomed"].gave_up:
                break
            supervisor.supervise_once(now=now)
            wait_for(lambda: not child.running or child.crashed)
            now += 1.0
        assert supervisor._children["doomed"].gave_up
        assert child.restart_count == policy.max_restarts
        health = supervisor.health()["services"]["doomed"]
        assert health["state"] == "crashed"
        supervisor.close()

    def test_child_added_while_running_starts_immediately(self):
        supervisor = Supervisor("sup")
        supervisor.start()
        child = Ticker("late")
        supervisor.add_child(child)
        assert child.running
        supervisor.close()
        assert not child.running

    def test_live_supervision_restarts_crashed_child(self):
        policy = RestartPolicy(max_restarts=5, backoff_base=0.001)
        supervisor = Supervisor("sup", policy=policy, poll_interval=0.005)
        child = Ticker("flaky", fail_after=1)
        supervisor.add_child(child)
        supervisor.start()
        try:
            assert wait_for(lambda: child.crashed)
            child.fail_after = None
            assert wait_for(lambda: child.running and child.restart_count >= 1)
        finally:
            supervisor.close()


class TestMetricsRegistry:
    def test_counters_and_gauges_snapshot(self):
        registry = MetricsRegistry()
        scoped = registry.scoped("svc")
        scoped.counter("hits").inc(3)
        scoped.gauge("depth").set(7)
        scoped.gauge_fn("derived", lambda: 42)
        assert scoped.snapshot() == {"hits": 3, "depth": 7, "derived": 42}
        # The parent sees the same values under dotted names.
        assert registry.value("svc.hits") == 3

    def test_unique_scope_suffixes(self):
        registry = MetricsRegistry()
        assert registry.unique_scope("svc") == "svc"
        assert registry.unique_scope("svc") == "svc#2"
        assert registry.unique_scope("svc") == "svc#3"

    def test_counter_is_thread_safe(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


def build_monitor(**kwargs):
    fs = LustreFilesystem(num_mds=1, clock=ManualClock())
    fs.makedirs("/proj/data")
    monitor = LustreMonitor(fs, MonitorConfig(**kwargs))
    return fs, monitor


class TestMonitorStopOrdering:
    def test_stop_flushes_inflight_events_to_consumers(self):
        """Regression: events still in the pipeline when stop() is called
        must reach consumers before their subscription is torn down."""
        fs, monitor = build_monitor()
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(seq))
        monitor.start()
        try:
            for index in range(50):
                fs.create(f"/proj/data/f{index}")
        finally:
            # Stop immediately: most events are likely still in flight.
            monitor.stop()
        assert len(seen) == 50

    def test_consumers_stop_after_aggregator(self):
        fs, monitor = build_monitor()
        monitor.subscribe(lambda seq, ev: None, name="late")
        order = [
            service.name for service in monitor.supervisor.children()
        ]
        # Start order: consumers first, aggregator, then collectors —
        # stop is the reverse, so the consumer outlives the aggregator.
        assert order.index("late") < order.index("aggregator")
        assert all(
            order.index("aggregator") < order.index(c.name)
            for c in monitor.collectors
        )


class CrashingSink:
    """An EventSink that kills the collector worker N times."""

    def __init__(self, inner, crashes):
        self.inner = inner
        self.crashes_left = crashes
        self.batches = 0

    def send(self, payload):
        if self.crashes_left > 0:
            self.crashes_left -= 1
            raise ServiceCrash("sink blew up")
        self.inner.send(payload)
        self.batches += 1


class TestFaultInjection:
    def test_killed_collector_restarted_without_event_loss(self):
        """A collector crash mid-poll is restarted by the supervisor and
        re-reads unpurged records: at-least-once, no loss."""
        fs, monitor = build_monitor(
            restart_policy=RestartPolicy(max_restarts=10, backoff_base=0.001),
            supervise_interval=0.002,
        )
        collector = monitor.collectors[0]
        collector.sink = CrashingSink(collector.sink, crashes=2)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev.path))
        monitor.start()
        try:
            for index in range(20):
                fs.create(f"/proj/data/f{index}")
            assert wait_for(lambda: len(seen) >= 20, timeout=10.0)
        finally:
            monitor.stop()
        # The crash really happened and the supervisor brought it back.
        assert collector.sink.crashes_left == 0
        assert collector.restart_count >= 1
        # Report-before-purge: every event was delivered despite the
        # crashes (dedup not needed here because the crash occurs before
        # any partial report).
        assert sorted(set(seen)) == sorted(
            f"/proj/data/f{index}" for index in range(20)
        )
        # Health reflects the restarts through the shared registry.
        services = monitor.stats().services
        key = collector.metrics.scope
        assert services[key]["restart_count"] == collector.restart_count

    def test_monitor_stats_include_service_health(self):
        fs, monitor = build_monitor()
        fs.create("/proj/data/f")
        monitor.drain()
        stats = monitor.stats()
        assert stats.records_read == 1
        for record in stats.services.values():
            assert {"state", "restart_count", "workers", "last_error"} <= set(
                record
            )
