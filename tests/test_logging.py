"""Tests for the logging utilities and component log output."""

import io
import logging

import pytest

from repro.util.logging import CaptureHandler, configure_logging, get_logger


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("core.collector").name == "repro.core.collector"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger("repro").name == "repro"

    def test_quiet_by_default(self):
        # The library root has a NullHandler, so logging at import time
        # never warns about missing handlers.
        root = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in root.handlers
        )


class TestConfigureLogging:
    def test_writes_to_stream(self):
        stream = io.StringIO()
        handler = configure_logging(level=logging.INFO, stream=stream)
        try:
            get_logger("test").info("hello %s", "world")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        assert "hello world" in stream.getvalue()
        assert "repro.test" in stream.getvalue()

    def test_reconfigure_replaces_handler(self):
        first = configure_logging(stream=io.StringIO())
        second = configure_logging(stream=io.StringIO())
        root = logging.getLogger("repro")
        try:
            console_handlers = [
                h for h in root.handlers if getattr(h, "_repro_console", False)
            ]
            assert console_handlers == [second]
        finally:
            root.removeHandler(second)


class TestCaptureHandler:
    def test_captures_and_filters(self):
        capture = CaptureHandler().attach()
        try:
            get_logger("test").warning("warn-msg")
            get_logger("test").info("info-msg")
        finally:
            capture.detach()
        assert "warn-msg" in capture.messages(logging.WARNING)
        assert "info-msg" not in capture.messages(logging.WARNING)
        assert len(capture.messages()) == 2


class TestComponentLogging:
    def test_collector_logs_report_failures(self):
        from repro.core.collector import Collector, CollectorConfig
        from repro.lustre import LustreFilesystem
        from repro.util.clock import ManualClock

        class FailingSink:
            def send(self, payload):
                raise ConnectionError("down")

        capture = CaptureHandler().attach()
        try:
            fs = LustreFilesystem(clock=ManualClock())
            collector = Collector(
                "mds0", fs, fs.cluster.servers[0], FailingSink(),
                CollectorConfig(),
            )
            fs.create("/f")
            collector.poll_once()
        finally:
            capture.detach()
        warnings = capture.messages(logging.WARNING)
        assert any("report of 1 events failed" in msg for msg in warnings)

    def test_service_logs_permanent_action_failure(self):
        from repro.ripple import Action, RippleAgent, RippleService, Trigger
        from repro.ripple.service import ServiceConfig

        capture = CaptureHandler().attach()
        try:
            service = RippleService(ServiceConfig(max_action_attempts=1))
            agent = RippleAgent("dev")
            service.register_agent(agent)
            agent.attach_local_filesystem()
            agent.fs.makedirs("/in")
            agent.register_callable(
                "boom",
                lambda agent, event, parameters: (_ for _ in ()).throw(
                    RuntimeError("no")
                ),
            )
            service.add_rule(
                Trigger(agent_id="dev", path_prefix="/in"),
                Action("callable", "dev", {"function": "boom"}),
            )
            agent.fs.create("/in/f", b"")
            service.run_until_quiet()
        finally:
            capture.detach()
        warnings = capture.messages(logging.WARNING)
        assert any("failed permanently" in msg for msg in warnings)

    def test_cleanup_logs_redrives(self):
        from repro.cloudq import CleanupFunction, ReliableQueue
        from repro.util.clock import ManualClock

        capture = CaptureHandler().attach()
        try:
            clock = ManualClock()
            queue = ReliableQueue("q", visibility_timeout=30, clock=clock)
            queue.send("x")
            queue.receive()
            clock.advance(10)
            CleanupFunction(queue, stall_threshold=5).sweep_once()
        finally:
            capture.detach()
        assert any("re-drove 1" in msg for msg in capture.messages())
