"""Stress and concurrency tests: the live pipeline under real threads."""

import threading
import time

import pytest

from repro.core import (
    CollectorConfig,
    LustreMonitor,
    MonitorConfig,
    ProcessorConfig,
)
from repro.core.store import EventStore
from repro.core.events import EventType, FileEvent
from repro.lustre import DnePolicy, LustreFilesystem


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestConcurrentMutation:
    def test_concurrent_writers_no_event_loss(self):
        """Four writer threads mutate while the monitor runs live; every
        changelog record must reach the subscriber exactly once."""
        fs = LustreFilesystem(num_mds=2, dne_policy=DnePolicy.HASH)
        for writer in range(4):
            fs.makedirs(f"/w{writer}")
        monitor = LustreMonitor(fs)
        seen = []
        seen_lock = threading.Lock()

        def on_event(seq, event):
            with seen_lock:
                seen.append(seq)

        monitor.subscribe(on_event)
        monitor.start()

        per_thread = 200

        def writer(index):
            for i in range(per_thread):
                fs.create(f"/w{index}/f{i}")

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            expected = 4 * per_thread
            assert wait_until(lambda: len(seen) >= expected, timeout=20)
        finally:
            monitor.stop()
        with seen_lock:
            assert sorted(seen) == list(range(1, 4 * per_thread + 1))
        monitor.shutdown()

    def test_mixed_operations_under_load(self):
        fs = LustreFilesystem()
        fs.makedirs("/d")
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(
                    processor=ProcessorConfig(batch_size=32, cache_size=256)
                )
            ),
        )
        counts = {"total": 0}
        lock = threading.Lock()

        def on_event(seq, event):
            with lock:
                counts["total"] += 1

        monitor.subscribe(on_event)
        # Records appended before the collectors registered (the
        # makedirs above) are invisible to new changelog users.
        baseline = fs.total_changelog_records()
        monitor.start()
        try:
            for i in range(100):
                fs.create(f"/d/f{i}")
                fs.write(f"/d/f{i}", 128)
                if i % 3 == 0:
                    fs.rename(f"/d/f{i}", f"/d/g{i}")
                if i % 5 == 0:
                    name = f"g{i}" if i % 3 == 0 else f"f{i}"
                    fs.unlink(f"/d/{name}")
            expected = fs.total_changelog_records() - baseline
            assert wait_until(lambda: counts["total"] >= expected, timeout=20)
        finally:
            monitor.stop()
        assert counts["total"] == fs.total_changelog_records() - baseline
        monitor.shutdown()


class TestStorePersistence:
    def _event(self, path):
        return FileEvent(
            event_type=EventType.CREATED, path=path, is_dir=False,
            timestamp=1.5, name=path.rsplit("/", 1)[-1], source="lustre",
            jobid="job.1",
        )

    def test_save_load_roundtrip(self, tmp_path):
        store = EventStore(max_events=100)
        for index in range(10):
            store.append(self._event(f"/f{index}"))
        target = str(tmp_path / "catalog.jsonl")
        written = store.save(target)
        assert written == 10
        restored = EventStore.load(target)
        assert len(restored) == 10
        assert restored.last_seq == 10
        assert restored.recent(1)[0][1].path == "/f9"
        assert restored.recent(1)[0][1].jobid == "job.1"

    def test_restore_continues_sequence_numbers(self, tmp_path):
        store = EventStore()
        for index in range(5):
            store.append(self._event(f"/f{index}"))
        target = str(tmp_path / "catalog.jsonl")
        store.save(target)
        restored = EventStore.load(target)
        assert restored.append(self._event("/new")) == 6

    def test_rotation_state_preserved(self, tmp_path):
        store = EventStore(max_events=3)
        for index in range(10):
            store.append(self._event(f"/f{index}"))
        target = str(tmp_path / "catalog.jsonl")
        store.save(target)
        restored = EventStore.load(target)
        assert len(restored) == 3
        assert restored.oldest_retained_seq == 8
        assert restored.max_events == 3


class TestDeepAndUnicodeNamespaces:
    def test_deeply_nested_paths_resolve(self):
        fs = LustreFilesystem()
        path = ""
        for depth in range(50):
            path += f"/l{depth}"
            fs.mkdir(path)
        fs.create(path + "/leaf.dat")
        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        fs.write(path + "/leaf.dat", 1)
        monitor.drain()
        assert seen[0].path == path + "/leaf.dat"

    def test_unicode_filenames_flow_through(self):
        fs = LustreFilesystem()
        fs.makedirs("/данные/实验")
        monitor = LustreMonitor(fs)
        seen = []
        monitor.subscribe(lambda seq, ev: seen.append(ev))
        fs.create("/данные/实验/résultat_π.dat")
        monitor.drain()
        assert seen[0].path == "/данные/实验/résultat_π.dat"
        # And survives serialisation (message fabric / store / API).
        roundtripped = FileEvent.from_dict(seen[0].to_dict())
        assert roundtripped == seen[0]

    def test_unicode_survives_changelog_text_format(self):
        from repro.lustre.changelog import ChangelogRecord

        fs = LustreFilesystem()
        fs.create("/δοκιμή.txt")
        (line,) = fs.changelogs()[0].dump()
        parsed = ChangelogRecord.parse(line)
        assert parsed.name == "δοκιμή.txt"

    def test_large_flat_directory(self):
        fs = LustreFilesystem()
        fs.mkdir("/big")
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(
                    read_batch=512,
                    processor=ProcessorConfig(batch_size=128, cache_size=64),
                )
            ),
        )
        count = {"n": 0}
        monitor.subscribe(lambda seq, ev: count.__setitem__("n", count["n"] + 1))
        for index in range(5000):
            fs.create(f"/big/f{index:05d}")
        monitor.drain()
        assert count["n"] == 5000
        stats = monitor.stats()
        assert stats.resolver_invocations < 100  # cache + batch collapse
