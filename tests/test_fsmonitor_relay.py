"""Tests for the StorageMonitor facade and hierarchical relays."""

import pytest

from repro.core import (
    LustreMonitor,
    RelayAggregator,
    StorageMonitor,
    facility_relay,
)
from repro.core.events import EventType
from repro.errors import MonitorError
from repro.fs.memfs import MemoryFilesystem
from repro.lustre import LustreFilesystem
from repro.msgq import Context
from repro.util.clock import ManualClock


class TestStorageMonitorFacade:
    def test_lustre_gets_changelog_backend(self):
        monitor = StorageMonitor.for_filesystem(LustreFilesystem())
        assert monitor.backend_name == "changelog"
        monitor.close()

    def test_local_gets_inotify_backend(self):
        monitor = StorageMonitor.for_filesystem(MemoryFilesystem())
        assert monitor.backend_name == "inotify"
        monitor.close()

    def test_polling_backend_opt_in(self):
        monitor = StorageMonitor.for_filesystem(
            MemoryFilesystem(), backend="polling"
        )
        assert monitor.backend_name == "polling"
        monitor.close()

    def test_backend_mismatch_rejected(self):
        with pytest.raises(MonitorError):
            StorageMonitor.for_filesystem(
                MemoryFilesystem(), backend="changelog"
            )
        with pytest.raises(MonitorError):
            StorageMonitor.for_filesystem(
                LustreFilesystem(), backend="inotify"
            )
        with pytest.raises(MonitorError):
            StorageMonitor.for_filesystem(MemoryFilesystem(), backend="magic")

    def _collect(self, monitor):
        seen = []
        monitor.subscribe(lambda event: seen.append(
            (event.event_type, event.path)
        ))
        return seen

    def test_same_stream_shape_across_backends(self):
        """create+delete produces the same normalized events on every
        backend (modulo polling's blindness to short-lived files)."""
        # changelog
        lustre = LustreFilesystem(clock=ManualClock())
        lustre.mkdir("/w")
        changelog_monitor = StorageMonitor.for_filesystem(lustre)
        changelog_seen = self._collect(changelog_monitor)
        changelog_monitor.watch("/w")
        lustre.create("/w/f")
        changelog_monitor.drain()

        # inotify
        local = MemoryFilesystem(clock=ManualClock())
        local.mkdir("/w")
        inotify_monitor = StorageMonitor.for_filesystem(local)
        inotify_seen = self._collect(inotify_monitor)
        inotify_monitor.watch("/w")
        local.create("/w/f")
        inotify_monitor.drain()

        # polling
        polled = MemoryFilesystem(clock=ManualClock())
        polled.mkdir("/w")
        polling_monitor = StorageMonitor.for_filesystem(
            polled, backend="polling"
        )
        polling_seen = self._collect(polling_monitor)
        polling_monitor.watch("/w")
        polled.create("/w/f")
        polling_monitor.drain()

        expected = [(EventType.CREATED, "/w/f")]
        assert changelog_seen == expected
        assert inotify_seen == expected
        assert polling_seen == expected
        for monitor in (changelog_monitor, inotify_monitor, polling_monitor):
            monitor.close()

    def test_events_delivered_counter(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = StorageMonitor.for_filesystem(fs)
        monitor.subscribe(lambda event: None)
        fs.create("/a")
        fs.create("/b")
        monitor.drain()
        assert monitor.events_delivered == 2
        monitor.close()

    def test_multiple_subscribers(self):
        fs = LustreFilesystem(clock=ManualClock())
        monitor = StorageMonitor.for_filesystem(fs)
        a, b = [], []
        monitor.subscribe(lambda event: a.append(event.path))
        monitor.subscribe(lambda event: b.append(event.path))
        fs.create("/f")
        monitor.drain()
        assert a == b == ["/f"]
        monitor.close()

    def test_polling_live_mode(self):
        import time

        fs = MemoryFilesystem()
        fs.mkdir("/w")
        monitor = StorageMonitor.for_filesystem(
            fs, backend="polling", poll_interval=0.01
        )
        seen = []
        monitor.subscribe(lambda event: seen.append(event.path))
        monitor.watch("/w")
        monitor.start()
        try:
            fs.create("/w/live")
            deadline = time.time() + 3
            while not seen and time.time() < deadline:
                time.sleep(0.01)
        finally:
            monitor.close()
        assert seen == ["/w/live"]


class TestRelayAggregator:
    def _monitor_with_endpoints(self, suffix):
        from repro.core import AggregatorConfig, MonitorConfig

        fs = LustreFilesystem(clock=ManualClock())
        config = MonitorConfig(
            aggregator=AggregatorConfig(
                inbound_endpoint=f"inproc://agg-{suffix}",
                publish_endpoint=f"inproc://events-{suffix}",
                api_endpoint=f"inproc://api-{suffix}",
            )
        )
        return fs, LustreMonitor(fs, config)

    def test_relay_merges_two_filesystems(self):
        fs_a, monitor_a = self._monitor_with_endpoints("a")
        fs_b, monitor_b = self._monitor_with_endpoints("b")
        relay = facility_relay([monitor_a, monitor_b], names=["home", "scratch"])
        merged = []
        from repro.core.consumer import Consumer

        consumer = Consumer(
            relay.context, lambda seq, ev: merged.append((seq, ev.path)),
            config=relay.config,
        )
        fs_a.create("/from-home")
        fs_b.create("/from-scratch")
        monitor_a.drain()
        monitor_b.drain()
        relay.pump_once()
        consumer.poll_once()
        assert [path for _seq, path in merged] == [
            "/from-home", "/from-scratch",
        ]
        # Relay assigns its own gapless sequence numbers.
        assert [seq for seq, _path in merged] == [1, 2]
        assert relay.relayed_counts == {"home": 1, "scratch": 1}

    def test_relay_historic_api_covers_merged_stream(self):
        fs_a, monitor_a = self._monitor_with_endpoints("a2")
        fs_b, monitor_b = self._monitor_with_endpoints("b2")
        relay = facility_relay([monitor_a, monitor_b])
        for index in range(3):
            fs_a.create(f"/a{index}")
            fs_b.create(f"/b{index}")
        monitor_a.drain()
        monitor_b.drain()
        relay.pump_once()
        assert relay.store.last_seq == 6
        since = relay.store.since(4)
        assert len(since) == 2

    def test_relay_can_also_accept_direct_batches(self):
        from repro.core import AggregatorConfig
        from repro.core.events import FileEvent

        relay = RelayAggregator(
            Context(),
            AggregatorConfig(
                inbound_endpoint="inproc://direct-agg",
                publish_endpoint="inproc://direct-events",
                api_endpoint="inproc://direct-api",
            ),
        )
        push = relay.context.push().connect("inproc://direct-agg")
        event = FileEvent(
            event_type=EventType.CREATED, path="/direct", is_dir=False,
            timestamp=0.0, name="direct", source="lustre",
        )
        push.send([event])
        assert relay.pump_once() == 1
        assert relay.store.last_seq == 1


class TestRelayOrderingProperty:
    def test_per_upstream_order_preserved(self):
        """Events from one filesystem keep their relative order through
        the relay, whatever the interleaving with other upstreams."""
        from repro.core import AggregatorConfig, MonitorConfig

        def make(suffix):
            fs = LustreFilesystem(clock=ManualClock())
            config = MonitorConfig(
                aggregator=AggregatorConfig(
                    inbound_endpoint=f"inproc://oagg-{suffix}",
                    publish_endpoint=f"inproc://oevents-{suffix}",
                    api_endpoint=f"inproc://oapi-{suffix}",
                )
            )
            return fs, LustreMonitor(fs, config)

        fs_a, mon_a = make("pa")
        fs_b, mon_b = make("pb")
        relay = facility_relay([mon_a, mon_b], names=["a", "b"])
        merged = []
        from repro.core.consumer import Consumer

        consumer = Consumer(
            relay.context, lambda seq, ev: merged.append(ev.path),
            config=relay.config,
        )
        # Interleave activity and drains irregularly.
        for round_index in range(6):
            for i in range(round_index + 1):
                fs_a.create(f"/a{round_index}_{i}")
            if round_index % 2 == 0:
                fs_b.create(f"/b{round_index}")
            mon_a.drain()
            if round_index % 3 == 0:
                mon_b.drain()
                relay.pump_once()
        mon_a.drain()
        mon_b.drain()
        relay.pump_once()
        consumer.poll_once()
        from_a = [p for p in merged if p.startswith("/a")]
        from_b = [p for p in merged if p.startswith("/b")]
        assert from_a == sorted(from_a, key=lambda p: (int(p[2:].split("_")[0]), int(p.split("_")[1])))
        assert from_b == sorted(from_b)
        assert len(merged) == len(from_a) + len(from_b)
