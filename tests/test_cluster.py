"""Tests for the sharded aggregation tier.

Covers the cluster subsystem end to end:

* deterministic rendezvous routing and versioned shard maps (including
  the rebalance property: removing a shard moves only its keys);
* the consumer watermark regression — a single global watermark drops a
  lagging shard's fresh events as "duplicates"; per-shard watermarks
  must not;
* the crash-safe aggregator pump — batches drained from the inbound
  mailbox but not yet stored are requeued when the pump crashes, so a
  shard crash between collector purge and store loses nothing;
* the tentpole property: an N-shard ClusterMonitor delivers exactly
  the same event *set* as a single-aggregator LustreMonitor on an
  identical trace;
* live shard failover: kill one shard mid-run, supervisor restarts it,
  zero event loss and no duplicates;
* ClusterClient scatter-gather: merged ``events_since``/``query``/
  ``recent`` in ``(shard, seq)`` total order, summed ``stats()``, and
  cluster-wide ``catch_up`` against per-shard watermarks.
"""

import asyncio
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterMonitor,
    ShardMap,
    ShardRouter,
    decode_cursor,
    encode_cursor,
)
from repro.core import (
    Aggregator,
    AggregatorConfig,
    Consumer,
    EventBatch,
    LustreMonitor,
    MonitorConfig,
)
from repro.core.events import EventType, FileEvent
from repro.lustre import LustreFilesystem
from repro.lustre.mds import DnePolicy
from repro.msgq import Context
from repro.runtime import RestartPolicy, ServiceCrash
from repro.util.clock import ManualClock
from repro.workloads.traces import TraceReplayer, synthetic_trace


def make_event(path, event_type=EventType.CREATED, timestamp=1.0):
    return FileEvent(
        event_type=event_type,
        path=path,
        is_dir=False,
        timestamp=timestamp,
        name=path.rsplit("/", 1)[-1],
        source="lustre",
    )


def wait_for(predicate, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def build_cluster(num_shards=3, num_mds=2, mdts_per_mds=2, **kwargs):
    fs = LustreFilesystem(
        num_mds=num_mds,
        mdts_per_mds=mdts_per_mds,
        dne_policy=DnePolicy.ROUND_ROBIN,
        clock=ManualClock(),
    )
    cluster = ClusterMonitor(
        fs, ClusterConfig(num_shards=num_shards, **kwargs)
    )
    return fs, cluster


def populate(fs, dirs=6, files_per_dir=5):
    """Spread activity across directories (and, with DNE, MDTs)."""
    paths = []
    for d in range(dirs):
        fs.makedirs(f"/proj{d}")
        for i in range(files_per_dir):
            path = f"/proj{d}/f{i}.dat"
            fs.create(path)
            paths.append(path)
    return paths


# ---------------------------------------------------------------------------
# Routing: rendezvous hashing + versioned shard maps
# ---------------------------------------------------------------------------


class TestShardMap:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardMap(())

    def test_rejects_duplicate_shards(self):
        with pytest.raises(ValueError):
            ShardMap(("a", "a"))

    def test_route_is_deterministic_across_instances(self):
        a = ShardMap(("shard0", "shard1", "shard2"))
        b = ShardMap(("shard0", "shard1", "shard2"))
        keys = [f"mdt:{i}" for i in range(64)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_keys_spread_across_shards(self):
        shard_map = ShardMap(("shard0", "shard1", "shard2", "shard3"))
        owners = {shard_map.route(f"mdt:{i}") for i in range(256)}
        assert owners == set(shard_map.shards)

    def test_without_bumps_version_and_drops_shard(self):
        shard_map = ShardMap(("a", "b", "c"))
        successor = shard_map.without("b")
        assert successor.version == shard_map.version + 1
        assert successor.shards == ("a", "c")
        with pytest.raises(KeyError):
            shard_map.without("nope")

    def test_with_shards_bumps_version_and_dedups(self):
        shard_map = ShardMap(("a", "b"))
        successor = shard_map.with_shards("c", "a")
        assert successor.shards == ("a", "b", "c")
        assert successor.version == shard_map.version + 1

    @settings(max_examples=40, deadline=None)
    @given(
        num_shards=st.integers(min_value=2, max_value=6),
        removed=st.integers(min_value=0, max_value=5),
    )
    def test_removing_a_shard_moves_only_its_keys(self, num_shards, removed):
        """The rendezvous property the whole rebalance story rests on."""
        removed %= num_shards
        shards = tuple(f"shard{i}" for i in range(num_shards))
        before = ShardMap(shards)
        after = before.without(f"shard{removed}")
        for i in range(128):
            key = f"mdt:{i}"
            owner = before.route(key)
            if owner == f"shard{removed}":
                assert after.route(key) != owner
            else:
                assert after.route(key) == owner

    def test_restore_returns_original_assignment(self):
        before = ShardMap(("shard0", "shard1", "shard2"))
        roundtrip = before.without("shard1").with_shards("shard1")
        keys = [f"mdt:{i}" for i in range(128)]
        # with_shards appends, so membership order may differ — but
        # rendezvous scoring ignores order entirely.
        assert [before.route(k) for k in keys] == [
            roundtrip.route(k) for k in keys
        ]


class TestShardRouter:
    def test_swap_rejects_stale_versions(self):
        router = ShardRouter(ShardMap(("a", "b")))
        with pytest.raises(ValueError):
            router.swap(ShardMap(("a",), version=1))

    def test_retire_and_restore_bump_versions(self):
        router = ShardRouter(ShardMap(("a", "b")))
        router.retire("a")
        assert router.shards == ("b",)
        assert router.version == 2
        router.restore("a")
        assert set(router.shards) == {"a", "b"}
        assert router.version == 3

    def test_route_counts_decisions(self):
        router = ShardRouter(ShardMap(("a", "b")))
        for i in range(5):
            router.route(f"k{i}")
        assert router.routed == 5


# ---------------------------------------------------------------------------
# Consumer watermarks (satellite regression)
# ---------------------------------------------------------------------------


class TestPerShardWatermarks:
    def _consumer(self, ctx):
        config = AggregatorConfig(
            inbound_endpoint="inproc://wm.reports",
            publish_endpoint="inproc://wm.events",
            api_endpoint="inproc://wm.api",
        )
        pub = ctx.pub().bind(config.publish_endpoint)
        ctx.rep().bind(config.api_endpoint)
        seen = []
        consumer = Consumer(
            ctx, lambda seq, ev: seen.append((seq, ev)), config=config
        )
        return pub, consumer, seen

    def _batch(self, shard, prefix, seqs):
        return EventBatch(
            tuple((seq, make_event(f"/{prefix}/f{seq}")) for seq in seqs),
            shard=shard,
        )

    def test_lagging_shard_events_not_dropped_as_duplicates(self):
        """Regression: one global watermark means a fast shard at seq
        10 makes a lagging shard's seqs 1..5 look like replays."""
        pub, consumer, seen = self._consumer(Context())
        pub.send("events", self._batch("shard0", "fast", range(1, 11)))
        consumer.poll_once()
        pub.send("events", self._batch("shard1", "lag", range(1, 6)))
        consumer.poll_once()
        assert len(seen) == 15
        assert consumer.duplicates_skipped == 0
        assert consumer.watermark("shard0") == 10
        assert consumer.watermark("shard1") == 5

    def test_replays_still_deduped_per_shard(self):
        pub, consumer, seen = self._consumer(Context())
        batch = self._batch("shard0", "a", range(1, 6))
        pub.send("events", batch)
        consumer.poll_once()
        pub.send("events", batch)  # replay of the same shard's seqs
        consumer.poll_once()
        assert len(seen) == 5
        assert consumer.duplicates_skipped == 5

    def test_unlabelled_batches_keep_single_watermark_semantics(self):
        """Pre-cluster publishers (shard=None) behave exactly as before:
        one watermark, readable via the legacy ``last_seq`` name."""
        pub, consumer, seen = self._consumer(Context())
        pub.send(
            "events",
            EventBatch(tuple((i, make_event(f"/x/f{i}")) for i in (1, 2, 3))),
        )
        consumer.poll_once()
        assert consumer.last_seq == 3
        pub.send("events", EventBatch(((2, make_event("/x/f2")),)))
        consumer.poll_once()
        assert len(seen) == 3
        assert consumer.duplicates_skipped == 1


# ---------------------------------------------------------------------------
# Crash-safe pump (requeue of drained-but-unstored batches)
# ---------------------------------------------------------------------------


class TestCrashSafePump:
    def _aggregator(self, tag):
        ctx = Context()
        config = AggregatorConfig(
            inbound_endpoint=f"inproc://{tag}.reports",
            publish_endpoint=f"inproc://{tag}.events",
            api_endpoint=f"inproc://{tag}.api",
        )
        aggregator = Aggregator(ctx, config)
        push = ctx.push().connect(config.inbound_endpoint)
        return aggregator, push

    def test_crash_mid_pump_requeues_unstored_batches(self):
        """Regression: pump_once drained the mailbox then crashed,
        losing every drained-but-unstored batch (collectors had
        already purged)."""
        aggregator, push = self._aggregator("crashpump")
        batches = [
            [make_event(f"/b{n}/f{i}") for i in range(4)] for n in range(3)
        ]
        for batch in batches:
            push.send(batch)

        original = aggregator.store.extend
        state = {"calls": 0}

        def crash_on_second(events):
            state["calls"] += 1
            if state["calls"] == 2:
                raise ServiceCrash("injected mid-pump")
            return original(events)

        aggregator.store.extend = crash_on_second
        with pytest.raises(ServiceCrash):
            aggregator.pump_once()
        # Batch 1 stored; batches 2 and 3 back in the mailbox, in order.
        assert aggregator.store.last_seq == 4
        assert aggregator.inbound.pending == 2

        aggregator.store.extend = original
        aggregator.pump_once()
        assert aggregator.store.last_seq == 12
        paths = [event.path for _seq, event in aggregator.store.since(0)]
        assert paths == [
            f"/b{n}/f{i}" for n in range(3) for i in range(4)
        ]

    def test_crash_after_store_does_not_requeue_that_batch(self):
        """A batch whose store committed must not be replayed — that
        would assign the same events fresh sequence numbers."""
        aggregator, push = self._aggregator("crashpub")
        push.send([make_event("/a/f0")])

        original_send = aggregator.publisher.send

        def crash_publish(topic, message):
            aggregator.publisher.send = original_send
            raise ServiceCrash("injected at publish")

        aggregator.publisher.send = crash_publish
        with pytest.raises(ServiceCrash):
            aggregator.pump_once()
        assert aggregator.store.last_seq == 1
        assert aggregator.inbound.pending == 0  # stored → not requeued
        aggregator.pump_once()
        assert aggregator.store.last_seq == 1  # no duplicate storage


# ---------------------------------------------------------------------------
# Tentpole property: cluster ≡ single-aggregator delivery set
# ---------------------------------------------------------------------------


def delivered_set(monitor_like, fs, ops):
    seen = []
    monitor_like.subscribe(lambda seq, ev: seen.append(ev))
    TraceReplayer(fs).replay(ops)
    monitor_like.drain()
    return seen


class TestClusterEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def test_cluster_delivers_same_event_set_as_single_aggregator(
        self, seed, num_shards
    ):
        """N shards repartition the stream; they must not change it."""

        def build_fs():
            return LustreFilesystem(
                num_mds=2,
                mdts_per_mds=2,
                dne_policy=DnePolicy.ROUND_ROBIN,
                clock=ManualClock(),
            )

        ops = list(synthetic_trace(100, seed=seed))
        fs_single = build_fs()
        single = LustreMonitor(fs_single, MonitorConfig())
        fs_cluster = build_fs()
        cluster = ClusterMonitor(
            fs_cluster, ClusterConfig(num_shards=num_shards)
        )
        try:
            single_events = delivered_set(single, fs_single, ops)
            cluster_events = delivered_set(cluster, fs_cluster, ops)
            assert set(cluster_events) == set(single_events)
            assert len(cluster_events) == len(single_events)
        finally:
            single.shutdown()
            cluster.shutdown()

    def test_mdt_streams_have_shard_affinity(self):
        """All of one MDT's events land on the shard that owns it."""
        fs, cluster = build_cluster(num_shards=3)
        try:
            cluster.subscribe(lambda seq, ev: None)
            populate(fs)
            cluster.drain()
            client = cluster.client()
            for shard_id in cluster.shard_ids:
                page = [
                    entry
                    for entry in client.events_since(0)
                    if entry[0] == shard_id
                ]
                for _shard, _seq, event in page:
                    assert cluster.shard_of(event.mdt_index) == shard_id
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# Failover
# ---------------------------------------------------------------------------


class TestShardFailover:
    def test_deterministic_crash_loses_nothing(self):
        """Injected crash before store → requeue → replay, exactly once."""
        fs, cluster = build_cluster(num_shards=3)
        seen = []
        try:
            cluster.subscribe(lambda seq, ev: seen.append(ev))
            paths = populate(fs)
            cluster.drain()
            before = len(seen)
            victim = cluster.shard_of(0)
            cluster.crash_shard(victim)
            fs.create("/proj0/crashy.dat")
            with pytest.raises(ServiceCrash):
                cluster.drain()
            cluster.drain()  # deterministic stand-in for the restart
            assert len(seen) == before + 1
            all_paths = [e.path for e in seen]
            assert len(all_paths) == len(set(all_paths))
            assert len(seen) >= len(paths) + 1
        finally:
            cluster.shutdown()

    def test_live_shard_kill_recovers_with_zero_loss(self):
        """Kill one shard mid-run under supervision: the supervisor
        restarts it, the requeued batch replays, and every event
        arrives exactly once."""
        fs, cluster = build_cluster(
            num_shards=2,
            restart_policy=RestartPolicy(max_restarts=5, backoff_base=0.01),
        )
        seen = []
        cluster.subscribe(lambda seq, ev: seen.append(ev))
        victim = cluster.shard_of(0)
        shard = cluster.shards[victim]
        try:
            cluster.start()
            first = populate(fs, dirs=4, files_per_dir=5)
            assert wait_for(lambda: len(seen) >= len(first) + 4)
            cluster.crash_shard(victim)
            more = []
            for i in range(10):
                path = f"/proj0/late{i}.dat"
                fs.create(path)
                more.append(path)
            expected = len(first) + 4 + len(more)  # +4 mkdir events
            assert wait_for(lambda: shard.restart_count >= 1)
            assert wait_for(lambda: len(seen) == expected)
        finally:
            cluster.shutdown()
        paths = [e.path for e in seen]
        assert len(paths) == len(set(paths)) == expected
        assert set(more) <= set(paths)

    def test_retire_reroutes_new_keys_and_restore_brings_them_back(self):
        fs, cluster = build_cluster(num_shards=2)
        try:
            cluster.subscribe(lambda seq, ev: None)
            victim = cluster.shard_of(0)
            survivor = next(
                s for s in cluster.shard_ids if s != victim
            )
            cluster.retire_shard(victim)
            populate(fs, dirs=4, files_per_dir=3)
            cluster.drain()
            stats = cluster.stats()
            assert stats.per_shard[victim]["events_stored"] == 0
            assert stats.per_shard[survivor]["events_stored"] > 0
            assert stats.shard_map_version == 2
            cluster.restore_shard(victim)
            fs.create("/proj0/back.dat")
            cluster.drain()
            assert (
                cluster.stats().per_shard[cluster.shard_of(0)][
                    "events_stored"
                ]
                > 0
            )
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# Scatter-gather client
# ---------------------------------------------------------------------------


class TestClusterClient:
    def _drained_cluster(self):
        fs, cluster = build_cluster(num_shards=3)
        seen = []
        cluster.subscribe(lambda seq, ev: seen.append(ev))
        populate(fs)
        cluster.drain()
        return fs, cluster, seen

    def test_events_since_merges_all_shards_in_total_order(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            client = cluster.client()
            merged = client.events_since(0)
            assert len(merged) == len(seen)
            assert {e for _s, _q, e in merged} == set(seen)
            # (shard, seq) total order: shards grouped in membership
            # order, seqs ascending within each shard.
            order = {s: i for i, s in enumerate(client.shard_ids)}
            keys = [(order[s], q) for s, q, _e in merged]
            assert keys == sorted(keys)
        finally:
            cluster.shutdown()

    def test_events_since_resumes_from_per_shard_cursors(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            client = cluster.client()
            cursors = client.last_seq()
            assert client.events_since(cursors) == []
            fs.create("/proj0/new.dat")
            cluster.drain()
            fresh = client.events_since(cursors)
            assert [e.path for _s, _q, e in fresh] == ["/proj0/new.dat"]
        finally:
            cluster.shutdown()

    def test_stats_totals_equal_sum_of_per_shard_registries(self):
        """The acceptance criterion: summed scatter-gather stats match
        the per-shard registry scopes exactly."""
        fs, cluster, seen = self._drained_cluster()
        try:
            answer = cluster.client().stats()
            for metric in ("events_stored", "events_published", "store_len"):
                expected = sum(
                    shard.metrics.snapshot().get(metric, 0)
                    for shard in cluster.shards.values()
                )
                assert answer["totals"][metric] == expected
            assert answer["totals"]["events_stored"] == len(seen)
            assert set(answer["per_shard"]) == set(cluster.shard_ids)
        finally:
            cluster.shutdown()

    def test_recent_returns_newest_cluster_wide(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            fs.clock.advance(10.0)
            for i in range(3):
                fs.create(f"/proj1/newest{i}.dat")
            cluster.drain()
            newest = cluster.client().recent(3)
            assert {e.path for _s, _q, e in newest} == {
                f"/proj1/newest{i}.dat" for i in range(3)
            }
        finally:
            cluster.shutdown()

    def test_query_filters_across_shards(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            client = cluster.client()
            under = client.query(path_prefix="/proj2")
            assert under
            for _shard, _seq, event in under:
                assert event.path.startswith("/proj2")
            summary = client.activity_summary("/")
            assert summary["created"] == len(
                [e for e in seen if e.event_type == EventType.CREATED]
            )
        finally:
            cluster.shutdown()

    def test_metrics_exposition_covers_every_shard(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            exposition = cluster.client().metrics()["prometheus"]
            for shard_id in cluster.shard_ids:
                # Shard scopes are reserved via unique_scope(), so they
                # render as a scope label on one shared family.
                assert (
                    f'repro_events_stored_total{{scope="{shard_id}"}}'
                    in exposition
                )
        finally:
            cluster.shutdown()

    def test_catch_up_backfills_and_suppresses_duplicates(self):
        fs, cluster, seen = self._drained_cluster()
        try:
            late_events = []
            late = cluster.subscribe(
                lambda seq, ev: late_events.append(ev), name="late"
            )
            client = cluster.client()
            recovered = client.catch_up(late)
            assert recovered == len(seen)
            assert set(late_events) == set(seen)
            # A second catch-up pages from the advanced watermarks —
            # nothing to fetch, nothing re-delivered.
            assert client.catch_up(late) == 0
            assert len(late_events) == len(seen)
            # And a replayed entry is still suppressed by the dedup.
            shard, seq, event = client.events_since(0)[0]
            late.deliver(seq, event, source=shard)
            assert late.duplicates_skipped == 1
            assert len(late_events) == len(seen)
            # Live delivery after catch-up continues seamlessly, and a
            # catch-up after live delivery re-fetches nothing (live and
            # historic paths share the per-shard watermarks).
            baseline = len(late_events)
            fs.create("/proj0/after.dat")
            cluster.drain()
            assert late_events[-1].path == "/proj0/after.dat"
            assert client.catch_up(late) == 0
            assert len(late_events) == baseline + 1
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# Opaque cursor paging + async facade
# ---------------------------------------------------------------------------


class TestClusterCursorPaging:
    def _drained_cluster(self):
        fs, cluster = build_cluster(num_shards=3)
        seen = []
        cluster.subscribe(lambda seq, ev: seen.append(ev))
        populate(fs)
        cluster.drain()
        return fs, cluster, seen

    @pytest.mark.parametrize("limit", [1, 2, 3, 7, 29, 500])
    def test_page_walk_never_skips_or_duplicates(self, limit):
        """Walking page() at any page size reproduces events_since(0)
        exactly — the boundary may fall mid-shard without loss."""
        fs, cluster, _seen = self._drained_cluster()
        try:
            client = cluster.client()
            reference = client.events_since(0)
            walked, cursor = [], None
            while True:
                page = client.page(cursor, limit=limit)
                assert len(page) <= limit
                walked.extend(page.entries)
                cursor = page.cursor
                if page.exhausted:
                    break
            assert walked == reference
            # The final cursor is at the head: nothing more to read.
            assert len(client.page(cursor, limit=limit)) == 0
        finally:
            cluster.shutdown()

    def test_cursor_resumes_across_new_events(self):
        fs, cluster, _seen = self._drained_cluster()
        try:
            client = cluster.client()
            cursor = client.head_cursor()
            fs.create("/proj0/later.dat")
            cluster.drain()
            entries, cursor = client.events_since_all(cursor)
            assert [e.path for _s, _q, e in entries] == ["/proj0/later.dat"]
            # The returned token resumes past what was consumed.
            assert client.events_since_all(cursor)[0] == []
        finally:
            cluster.shutdown()

    def test_cursor_tokens_are_opaque_and_validated(self):
        fs, cluster, _seen = self._drained_cluster()
        try:
            client = cluster.client()
            token = client.head_cursor()
            watermarks = decode_cursor(token, client.shard_ids)
            assert set(watermarks) <= set(client.shard_ids)
            assert encode_cursor(watermarks) == token
            with pytest.raises(ValueError):
                client.page("corrupt~~~token")
            with pytest.raises(ValueError):
                client.page(encode_cursor({"shard99": 5}))
        finally:
            cluster.shutdown()

    def test_async_facade_matches_sync_answers(self):
        fs, cluster, _seen = self._drained_cluster()
        try:
            client = cluster.client()
            sync_entries, _ = client.events_since_all()
            sync_stats = client.stats()

            async def drive():
                aclient = client.as_async()
                entries, cursor = await aclient.events_since_all()
                page = await aclient.page(limit=5)
                stats = await aclient.stats()
                head = await aclient.head_cursor()
                return entries, cursor, page, stats, head

            entries, cursor, page, stats, head = asyncio.run(drive())
            assert entries == sync_entries
            assert len(page) == 5
            # api_requests keeps counting between the two stats calls;
            # the pipeline counters must agree exactly.
            for metric in ("events_stored", "events_published", "store_len"):
                assert stats["totals"][metric] == sync_stats["totals"][metric]
            assert decode_cursor(head) == client.last_seq()
            # The resume token covers everything: nothing left after it.
            assert client.events_since_all(cursor)[0] == []
        finally:
            cluster.shutdown()
