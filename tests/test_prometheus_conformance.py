"""Strict Prometheus text-format conformance for render_prometheus().

A scraper-side line-grammar checker: every exposition the registry can
produce must parse under the text format 0.0.4 rules — TYPE before any
series of its family, one HELP/TYPE pair per family, valid metric/label
names, monotone cumulative `le` buckets with a trailing +Inf equal to
`_count`, `_total`-suffixed counter families, and no duplicate
(family, labels) samples.  Future metrics that would silently break a
real scraper break these tests instead.
"""

from __future__ import annotations

import re

import pytest

from repro.metrics.registry import GAUGE_FN_ERRORS, MetricsRegistry

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_PAIR = re.compile(r'^(?P<key>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$')
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ConformanceError(AssertionError):
    pass


def _family_of(name: str, typed: dict) -> str:
    """The family a sample belongs to (histogram suffixes stripped)."""
    for suffix in HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)]
        if name.endswith(suffix) and typed.get(base) == "histogram":
            return base
    return name


def parse_labels(text: str) -> dict:
    labels = {}
    if not text:
        return labels
    for pair in text.split(","):
        match = LABEL_PAIR.match(pair)
        if match is None:
            raise ConformanceError(f"bad label pair: {pair!r}")
        key = match.group("key")
        if not LABEL_NAME.match(key):
            raise ConformanceError(f"bad label name: {key!r}")
        if key in labels:
            raise ConformanceError(f"duplicate label {key!r} in {text!r}")
        labels[key] = match.group("value")
    return labels


def check_exposition(text: str) -> dict:
    """Validate *text*; returns {family: {"type", "samples"}}."""
    if not text.endswith("\n"):
        raise ConformanceError("exposition must end with a newline")
    families: dict = {}
    typed: dict = {}
    helped: set = set()
    seen_samples: set = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            raise ConformanceError(f"line {lineno}: blank line")
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                raise ConformanceError(f"line {lineno}: empty HELP text")
            name = parts[2]
            if name in helped:
                raise ConformanceError(
                    f"line {lineno}: duplicate HELP for {name}"
                )
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ConformanceError(f"line {lineno}: malformed TYPE")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary",
                           "untyped"):
                raise ConformanceError(
                    f"line {lineno}: unknown type {kind!r}"
                )
            if name in typed:
                raise ConformanceError(
                    f"line {lineno}: duplicate TYPE for {name}"
                )
            if not METRIC_NAME.match(name):
                raise ConformanceError(
                    f"line {lineno}: bad family name {name!r}"
                )
            typed[name] = kind
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # comments are legal
        match = SAMPLE.match(line)
        if match is None:
            raise ConformanceError(f"line {lineno}: unparseable: {line!r}")
        name = match.group("name")
        if not METRIC_NAME.match(name):
            raise ConformanceError(f"line {lineno}: bad name {name!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            if match.group("value") not in ("+Inf", "-Inf", "NaN"):
                raise ConformanceError(
                    f"line {lineno}: bad value {match.group('value')!r}"
                ) from None
            value = float(match.group("value").replace("Inf", "inf"))
        labels = parse_labels(match.group("labels") or "")
        family = _family_of(name, typed)
        if family not in typed:
            raise ConformanceError(
                f"line {lineno}: series {name} before its TYPE"
            )
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            raise ConformanceError(f"line {lineno}: duplicate sample {key}")
        seen_samples.add(key)
        families[family]["samples"].append((name, labels, value))
    _check_families(families)
    return families


def _check_families(families: dict) -> None:
    for family, record in families.items():
        kind, samples = record["type"], record["samples"]
        if not samples:
            raise ConformanceError(f"family {family} has a TYPE but no series")
        if kind == "counter":
            if not family.endswith("_total"):
                raise ConformanceError(
                    f"counter family {family} lacks the _total suffix"
                )
            for name, _labels, value in samples:
                if name != family:
                    raise ConformanceError(
                        f"counter sample {name} outside family {family}"
                    )
                if value < 0:
                    raise ConformanceError(f"negative counter {name}={value}")
        elif kind == "gauge":
            if family.endswith("_total"):
                raise ConformanceError(
                    f"gauge family {family} must not end in _total"
                )
        elif kind == "histogram":
            _check_histogram(family, samples)


def _check_histogram(family: str, samples: list) -> None:
    # Group bucket series by their non-le labels (one scope = one
    # histogram instance sharing the family).
    instances: dict = {}
    for name, labels, value in samples:
        rest = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        record = instances.setdefault(
            rest, {"buckets": [], "sum": None, "count": None}
        )
        if name == f"{family}_bucket":
            if "le" not in labels:
                raise ConformanceError(f"{family}_bucket without le label")
            bound = (
                float("inf") if labels["le"] == "+Inf" else float(labels["le"])
            )
            record["buckets"].append((bound, value))
        elif name == f"{family}_sum":
            record["sum"] = value
        elif name == f"{family}_count":
            record["count"] = value
        else:
            raise ConformanceError(
                f"sample {name} is not a histogram series of {family}"
            )
    for rest, record in instances.items():
        buckets = record["buckets"]
        if not buckets:
            raise ConformanceError(f"histogram {family}{rest} has no buckets")
        bounds = [bound for bound, _ in buckets]
        if bounds != sorted(bounds):
            raise ConformanceError(
                f"histogram {family}{rest} le bounds not ascending"
            )
        if bounds[-1] != float("inf"):
            raise ConformanceError(
                f"histogram {family}{rest} missing +Inf bucket"
            )
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            raise ConformanceError(
                f"histogram {family}{rest} bucket counts not cumulative"
            )
        if record["count"] is None or record["sum"] is None:
            raise ConformanceError(
                f"histogram {family}{rest} missing _sum/_count"
            )
        if counts[-1] != record["count"]:
            raise ConformanceError(
                f"histogram {family}{rest} +Inf bucket != _count"
            )


# ---------------------------------------------------------------------------
# The checker against the renderer
# ---------------------------------------------------------------------------


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    scope0 = registry.unique_scope("shard0")
    scope1 = registry.unique_scope("shard1")
    for scope in (scope0, scope1):
        registry.counter(f"{scope}.events_stored").inc(7)
        registry.gauge(f"{scope}.inbound_depth").set(3)
        registry.histogram(f"{scope}.flush_latency").record(0.001, 5)
    # Unreserved dotted names keep the name-mangled form.
    registry.counter("pipeline.errors").inc(2)
    registry.histogram("pipeline.publish").record(0.002, 3)
    registry.gauge_fn("uptime_seconds", lambda: 12.5)
    registry.describe("uptime_seconds", "seconds since start")
    return registry


class TestRendererConformance:
    def test_populated_registry_conforms(self):
        families = check_exposition(populated_registry().render_prometheus())
        assert families["repro_events_stored_total"]["type"] == "counter"
        assert families["repro_uptime_seconds"]["type"] == "gauge"

    def test_reserved_scopes_render_as_labels(self):
        text = populated_registry().render_prometheus()
        assert 'repro_events_stored_total{scope="shard0"} 7' in text
        assert 'repro_inbound_depth{scope="shard1"} 3' in text
        # Unreserved dotted names stay mangled (no scope label).
        assert "repro_pipeline_errors_total 2" in text

    def test_one_help_and_type_pair_per_family(self):
        text = populated_registry().render_prometheus()
        assert text.count("# TYPE repro_events_stored_total ") == 1
        assert text.count("# HELP repro_events_stored_total ") == 1
        assert text.count("# TYPE repro_flush_latency ") == 1

    def test_help_text_is_customizable(self):
        registry = populated_registry()
        text = registry.render_prometheus()
        assert "# HELP repro_uptime_seconds seconds since start" in text

    def test_every_series_has_type_before_it(self):
        text = populated_registry().render_prometheus()
        seen_types = set()
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                seen_types.add(line.split(" ")[2])
            elif line and not line.startswith("#"):
                name = SAMPLE.match(line).group("name")
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in seen_types or base in seen_types

    def test_histogram_buckets_cumulative_and_capped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (1e-6, 1e-4, 0.01, 0.5, 2.0):
            hist.record(value)
        families = check_exposition(registry.render_prometheus())
        record = families["repro_latency"]
        (instance,) = {
            tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            for _n, labels, _v in record["samples"]
        }
        assert instance == ()

    def test_scope_collision_falls_back_to_mangled(self):
        registry = MetricsRegistry()
        scope = registry.unique_scope("svc")
        # Same family from the scope AND a root-level series: the
        # scoped one cannot use a bare label without colliding.
        registry.counter(f"{scope}.requests").inc(1)
        registry.histogram("svc2.requests").record(0.1)
        check_exposition(registry.render_prometheus())

    def test_cluster_exposition_conforms(self):
        from repro.cluster import ClusterConfig, ClusterMonitor
        from repro.lustre import LustreFilesystem
        from repro.lustre.mds import DnePolicy
        from repro.util.clock import ManualClock

        fs = LustreFilesystem(
            num_mds=2, mdts_per_mds=2,
            dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
        )
        cluster = ClusterMonitor(fs, ClusterConfig(num_shards=2))
        try:
            cluster.subscribe(lambda _seq, _event: None)
            fs.makedirs("/p")
            for index in range(40):
                fs.create(f"/p/f{index}")
            cluster.drain()
            families = check_exposition(
                cluster.registry.render_prometheus()
            )
            assert families["repro_events_stored_total"]["type"] == "counter"
            scopes = {
                labels.get("scope")
                for _n, labels, _v in families[
                    "repro_events_stored_total"
                ]["samples"]
            }
            assert {"shard0", "shard1"} <= scopes
        finally:
            cluster.shutdown()


class TestGaugeFnGuard:
    """A raising gauge_fn must not blind the whole exposition."""

    def _registry_with_bad_probe(self):
        registry = MetricsRegistry()
        registry.counter("good_counter").inc(3)
        registry.gauge_fn("good_probe", lambda: 1.0)

        def bad_probe():
            raise RuntimeError("probe exploded")

        registry.gauge_fn("bad_probe", bad_probe)
        return registry

    def test_snapshot_skips_failing_probe(self):
        registry = self._registry_with_bad_probe()
        snapshot = registry.snapshot()
        assert snapshot["good_counter"] == 3
        assert snapshot["good_probe"] == 1.0
        assert "bad_probe" not in snapshot

    def test_failures_are_counted(self):
        registry = self._registry_with_bad_probe()
        registry.snapshot()
        registry.snapshot()
        assert registry.counter(GAUGE_FN_ERRORS).value == 2

    def test_render_survives_failing_probe(self):
        registry = self._registry_with_bad_probe()
        text = registry.render_prometheus()
        check_exposition(text)
        assert "good_probe" in text
        assert "bad_probe" not in text

    def test_value_returns_default_on_failure(self):
        registry = self._registry_with_bad_probe()
        assert registry.value("bad_probe", default=-1) == -1


class TestCheckerCatchesViolations:
    """The checker itself must reject broken expositions."""

    def test_rejects_series_before_type(self):
        with pytest.raises(ConformanceError, match="before its TYPE"):
            check_exposition("repro_x_total 1\n# TYPE repro_x_total counter\n")

    def test_rejects_duplicate_type(self):
        with pytest.raises(ConformanceError, match="duplicate TYPE"):
            check_exposition(
                "# TYPE repro_x gauge\nrepro_x 1\n# TYPE repro_x gauge\n"
            )

    def test_rejects_counter_without_total_suffix(self):
        with pytest.raises(ConformanceError, match="_total suffix"):
            check_exposition("# TYPE repro_x counter\nrepro_x 1\n")

    def test_rejects_duplicate_samples(self):
        with pytest.raises(ConformanceError, match="duplicate sample"):
            check_exposition("# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n")

    def test_rejects_non_monotone_buckets(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ConformanceError, match="not cumulative"):
            check_exposition(bad)

    def test_rejects_missing_inf_bucket(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ConformanceError, match=r"\+Inf"):
            check_exposition(bad)

    def test_rejects_count_mismatch(self):
        bad = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 7\n"
        )
        with pytest.raises(ConformanceError, match="_count"):
            check_exposition(bad)
