"""Tests for metrics: rate meters, stage timers, histograms, resources."""

import pytest

from repro.metrics import (
    LatencyHistogram,
    RateMeter,
    ResourceUsageModel,
    StageTimer,
)
from repro.metrics.resources import ComponentCostModel
from repro.util.clock import ManualClock


class TestRateMeter:
    def test_rate_over_manual_clock(self):
        clock = ManualClock()
        meter = RateMeter(clock=clock)
        clock.advance(2.0)
        meter.mark(10)
        assert meter.rate == pytest.approx(5.0)

    def test_rate_over_explicit_window(self):
        meter = RateMeter(clock=ManualClock())
        meter.mark(100)
        assert meter.rate_over(4.0) == pytest.approx(25.0)

    def test_zero_elapsed_rate_is_zero(self):
        meter = RateMeter(clock=ManualClock())
        meter.mark()
        assert meter.rate == 0.0

    def test_reset(self):
        clock = ManualClock()
        meter = RateMeter(clock=clock)
        meter.mark(5)
        clock.advance(1)
        meter.reset()
        assert meter.count == 0
        assert meter.elapsed == 0.0


class TestStageTimer:
    def test_accumulates_per_stage(self):
        timer = StageTimer()
        with timer.stage("process"):
            pass
        with timer.stage("process"):
            pass
        with timer.stage("report"):
            pass
        assert timer.counts["process"] == 2
        assert timer.counts["report"] == 1
        assert timer.totals["process"] >= 0

    def test_breakdown_sums_to_one(self):
        timer = StageTimer()
        timer.totals = {"a": 3.0, "b": 1.0}
        breakdown = timer.breakdown()
        assert breakdown["a"] == pytest.approx(0.75)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_dominant_stage(self):
        timer = StageTimer()
        timer.totals = {"extract": 0.1, "process": 0.8, "report": 0.1}
        assert timer.dominant_stage() == "process"

    def test_dominant_stage_empty(self):
        assert StageTimer().dominant_stage() is None

    def test_mean(self):
        timer = StageTimer()
        timer.totals = {"x": 4.0}
        timer.counts = {"x": 8}
        assert timer.mean("x") == pytest.approx(0.5)
        assert timer.mean("missing") == 0.0


class TestLatencyHistogram:
    def test_mean_and_extremes(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.max_seen == 0.003
        assert histogram.min_seen == 0.001
        assert histogram.total == 3

    def test_percentile_monotone(self):
        histogram = LatencyHistogram()
        for index in range(1, 101):
            histogram.record(index / 1000.0)
        p50 = histogram.percentile(0.5)
        p99 = histogram.percentile(0.99)
        assert p50 <= p99

    def test_percentile_bounds_contain_values(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        assert histogram.percentile(1.0) >= 0.01

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(0)

    def test_bucket_bounds_double(self):
        histogram = LatencyHistogram(min_latency=1e-6)
        low, high = histogram.bucket_bounds(2)
        assert high == pytest.approx(low * 2)

    def test_overflow_bucket_catches_huge_values(self):
        histogram = LatencyHistogram(min_latency=1e-6, buckets=5)
        histogram.record(1e6)
        assert sum(histogram.counts()) == 1


class TestResourceUsageModel:
    def _model(self):
        return ResourceUsageModel(
            {
                "collector": ComponentCostModel(
                    cpu_seconds_per_event=1e-4,
                    base_memory_mb=10.0,
                    memory_bytes_per_event=1024.0,
                ),
                "consumer": ComponentCostModel(
                    cpu_seconds_per_event=1e-6,
                    base_memory_mb=5.0,
                    memory_bytes_per_event=0.0,
                ),
            }
        )

    def test_cpu_percent_from_events(self):
        model = self._model()
        model.account("collector", 1000)  # 0.1 CPU-seconds
        assert model.sample_window("collector", 1.0) == pytest.approx(10.0)

    def test_peak_tracks_max_window(self):
        model = self._model()
        model.account("collector", 100)
        model.sample_window("collector", 1.0)  # 1%
        model.account("collector", 1000)
        model.sample_window("collector", 1.0)  # 10%
        model.account("collector", 10)
        model.sample_window("collector", 1.0)  # 0.1%
        assert model.peak_sample("collector").cpu_percent == pytest.approx(10.0)

    def test_memory_grows_with_events(self):
        model = self._model()
        model.account("collector", 1024)
        assert model.memory_mb("collector") == pytest.approx(11.0)

    def test_memory_capped_by_retention(self):
        model = ResourceUsageModel(
            {
                "agg": ComponentCostModel(
                    cpu_seconds_per_event=0,
                    base_memory_mb=1.0,
                    memory_bytes_per_event=1024.0,
                    retained_event_cap=1024,
                )
            }
        )
        model.account("agg", 10_000)
        assert model.memory_mb("agg") == pytest.approx(2.0)

    def test_zero_cost_component(self):
        model = self._model()
        model.account("consumer", 100)
        assert model.memory_mb("consumer") == pytest.approx(5.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            self._model().account("ghost", 1)

    def test_avg_cpu(self):
        model = self._model()
        model.account("collector", 2000)
        assert model.cpu_percent_avg("collector", 10.0) == pytest.approx(2.0)
        assert model.events_handled("collector") == 2000
