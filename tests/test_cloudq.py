"""Tests for the SQS-style queue, serverless executor and cleanup."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloudq import (
    CleanupFunction,
    QueueService,
    ReliableQueue,
    ServerlessExecutor,
)
from repro.errors import QueueNotFound, ReceiptInvalid
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def queue(clock):
    return ReliableQueue("q", visibility_timeout=30.0, clock=clock)


class TestSendReceive:
    def test_send_then_receive(self, queue):
        queue.send({"k": "v"})
        (message,) = queue.receive()
        assert message.body == {"k": "v"}
        assert message.receipt is not None

    def test_receive_hides_message(self, queue):
        queue.send("a")
        queue.receive()
        assert queue.receive() == []

    def test_receive_many(self, queue):
        for index in range(5):
            queue.send(index)
        messages = queue.receive(max_messages=3)
        assert [m.body for m in messages] == [0, 1, 2]

    def test_fifo_ish_ordering(self, queue):
        for body in ("a", "b", "c"):
            queue.send(body)
        assert [m.body for m in queue.receive(max_messages=10)] == ["a", "b", "c"]

    def test_message_reappears_after_visibility_timeout(self, queue, clock):
        queue.send("x")
        queue.receive()
        clock.advance(31)
        (message,) = queue.receive()
        assert message.body == "x"
        assert message.receive_count == 2

    def test_delete_acknowledges(self, queue, clock):
        queue.send("x")
        (message,) = queue.receive()
        queue.delete(message.receipt)
        clock.advance(100)
        assert queue.receive() == []
        assert queue.total_deleted == 1

    def test_delete_with_stale_receipt_rejected(self, queue, clock):
        queue.send("x")
        (message,) = queue.receive()
        clock.advance(31)
        queue.receive()  # redelivered: old receipt superseded
        with pytest.raises(ReceiptInvalid):
            queue.delete(message.receipt)

    def test_delete_unknown_receipt_rejected(self, queue):
        with pytest.raises(ReceiptInvalid):
            queue.delete("bogus")

    def test_change_visibility_extends(self, queue, clock):
        queue.send("x")
        (message,) = queue.receive()
        queue.change_visibility(message.receipt, 100)
        clock.advance(50)
        assert queue.receive() == []
        clock.advance(51)
        assert len(queue.receive()) == 1

    def test_depth_accounting(self, queue):
        for index in range(3):
            queue.send(index)
        queue.receive()
        assert queue.approximate_depth == 3
        assert queue.visible_depth == 2
        assert queue.in_flight == 1


class TestRedrivePolicy:
    def test_poison_message_moves_to_dlq(self, clock):
        service = QueueService(clock=clock)
        queue = service.create_queue(
            "q", visibility_timeout=1.0, max_receives=2, with_dead_letter=True
        )
        dlq = service.queue("q-dlq")
        queue.send("poison")
        for _ in range(2):
            queue.receive()
            clock.advance(2)
        assert queue.receive() == []  # third receive dead-letters it
        assert queue.approximate_depth == 0
        assert dlq.approximate_depth == 1
        assert queue.total_dead_lettered == 1

    def test_redrive_stuck_makes_visible_immediately(self, queue, clock):
        queue.send("x")
        queue.receive()
        clock.advance(10)  # in flight 10s of a 30s timeout
        assert queue.redrive_stuck(older_than=5.0) == 1
        assert queue.visible_depth == 1

    def test_redrive_respects_threshold(self, queue, clock):
        queue.send("x")
        queue.receive()
        clock.advance(2)
        assert queue.redrive_stuck(older_than=5.0) == 0


class TestQueueService:
    def test_create_is_idempotent(self, clock):
        service = QueueService(clock=clock)
        first = service.create_queue("q")
        second = service.create_queue("q")
        assert first is second

    def test_unknown_queue_rejected(self, clock):
        with pytest.raises(QueueNotFound):
            QueueService(clock=clock).queue("nope")

    def test_list_queues(self, clock):
        service = QueueService(clock=clock)
        service.create_queue("b")
        service.create_queue("a", with_dead_letter=True)
        assert service.list_queues() == ["a", "a-dlq", "b"]


class TestServerlessExecutor:
    def test_poll_once_processes_and_deletes(self, queue):
        handled = []
        executor = ServerlessExecutor(queue, handled.append)
        queue.send("a")
        queue.send("b")
        assert executor.poll_once() == 2
        assert handled == ["a", "b"]
        assert queue.approximate_depth == 0
        assert executor.successes == 2

    def test_failed_handler_leaves_message_for_retry(self, queue, clock):
        attempts = []

        def flaky(body):
            attempts.append(body)
            if len(attempts) == 1:
                raise RuntimeError("transient")

        executor = ServerlessExecutor(queue, flaky)
        queue.send("x")
        executor.poll_once()
        assert executor.failures == 1
        assert queue.approximate_depth == 1  # still there, in flight
        clock.advance(31)
        executor.poll_once()
        assert attempts == ["x", "x"]
        assert queue.approximate_depth == 0

    def test_on_error_callback(self, queue):
        errors = []

        def bad(body):
            raise ValueError("nope")

        executor = ServerlessExecutor(
            queue, bad, on_error=lambda body, exc: errors.append((body, str(exc)))
        )
        queue.send("x")
        executor.poll_once()
        assert errors == [("x", "nope")]

    def test_drain_until_empty(self, queue):
        executor = ServerlessExecutor(queue, lambda body: None, batch_size=2)
        for index in range(7):
            queue.send(index)
        assert executor.drain() == 7

    def test_live_threaded_mode(self):
        import time

        queue = ReliableQueue("live", visibility_timeout=5.0)
        handled = []
        executor = ServerlessExecutor(queue, handled.append, concurrency=2,
                                      poll_interval=0.001)
        executor.start()
        try:
            for index in range(20):
                queue.send(index)
            deadline = time.time() + 3
            while len(handled) < 20 and time.time() < deadline:
                time.sleep(0.005)
        finally:
            executor.stop()
        assert sorted(handled) == list(range(20))

    def test_invalid_concurrency_rejected(self, queue):
        with pytest.raises(ValueError):
            ServerlessExecutor(queue, lambda b: None, concurrency=0)


class TestCleanupFunction:
    def test_sweep_redrives_stalled(self, queue, clock):
        cleanup = CleanupFunction(queue, stall_threshold=5.0)
        queue.send("x")
        queue.receive()
        clock.advance(6)
        assert cleanup.sweep_once() == 1
        assert cleanup.total_redriven == 1
        assert queue.visible_depth == 1

    def test_sweep_ignores_fresh_inflight(self, queue, clock):
        cleanup = CleanupFunction(queue, stall_threshold=5.0)
        queue.send("x")
        queue.receive()
        clock.advance(1)
        assert cleanup.sweep_once() == 0


# ---------------------------------------------------------------------------
# Property: at-least-once — every sent message is handled >= once, and with
# deletion it is eventually handled exactly as many times as receives.
# ---------------------------------------------------------------------------


class TestAtLeastOnceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        n_messages=st.integers(0, 20),
        failure_pattern=st.lists(st.booleans(), min_size=1, max_size=10),
    )
    def test_every_message_eventually_processed(self, n_messages, failure_pattern):
        clock = ManualClock()
        queue = ReliableQueue("q", visibility_timeout=1.0, clock=clock)
        handled: dict[int, int] = {}
        # Guarantee eventual success: every cycle ends with a success so
        # no message can fail forever (all-failure would need a DLQ).
        pattern = iter((failure_pattern + [False]) * (n_messages * 6 + 1))

        def handler(body):
            if next(pattern):
                raise RuntimeError("injected")
            handled[body] = handled.get(body, 0) + 1

        executor = ServerlessExecutor(queue, handler, batch_size=5)
        for index in range(n_messages):
            queue.send(index)
        for _ in range(200):
            executor.poll_once()
            if queue.approximate_depth == 0:
                break
            clock.advance(1.1)
        assert queue.approximate_depth == 0
        assert set(handled) == set(range(n_messages))
        assert all(count >= 1 for count in handled.values())
