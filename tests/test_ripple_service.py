"""Tests for the Ripple agent + cloud service, including failure injection."""

import pytest

from repro.core.events import EventType
from repro.errors import RippleError
from repro.ripple import (
    Action,
    RippleAgent,
    RippleService,
    ServiceConfig,
    Trigger,
)
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def service(clock):
    return RippleService(clock=clock)


def wired_agent(service, agent_id="dev", watch="/in"):
    agent = RippleAgent(agent_id)
    service.register_agent(agent)
    agent.attach_local_filesystem()
    agent.fs.makedirs(watch)
    return agent


class TestRegistration:
    def test_duplicate_agent_rejected(self, service):
        service.register_agent(RippleAgent("x"))
        with pytest.raises(RippleError):
            service.register_agent(RippleAgent("x"))

    def test_rules_distributed_on_registration(self, service):
        service.add_rule(
            Trigger(agent_id="late", path_prefix="/w"),
            Action("email", "late", {"to": "a@b"}),
        )
        agent = RippleAgent("late")
        agent.fs.makedirs("/w")
        service.register_agent(agent)
        assert len(agent.rules) == 1

    def test_rules_distributed_on_add(self, service):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        assert len(agent.rules) == 1

    def test_remove_rule_refreshes_agent(self, service):
        agent = wired_agent(service)
        rule = service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        service.remove_rule(rule.rule_id)
        assert agent.rules == []


class TestEventFlow:
    def test_rule_fires_end_to_end(self, service):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.csv"),
            Action("email", "dev", {"to": "pi@lab", "subject": "new {name}"}),
        )
        agent.fs.create("/in/run.csv", b"1,2")
        service.run_until_quiet()
        assert [m["subject"] for m in service.outbox] == ["new run.csv"]

    def test_non_matching_events_not_reported(self, service):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.csv"),
            Action("email", "dev", {"to": "pi@lab"}),
        )
        agent.fs.create("/in/readme.txt", b"x")
        service.run_until_quiet()
        assert agent.events_seen == 1
        assert agent.events_matched == 0
        assert service.events_accepted == 0

    def test_service_reevaluates_rules_authoritatively(self, service):
        """A rule removed between detection and processing must not fire."""
        agent = wired_agent(service)
        rule = service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "pi@lab"}),
        )
        agent.fs.create("/in/f.bin", b"")
        agent.drain_detection()  # event reported, queued
        service.remove_rule(rule.rule_id)
        service.run_until_quiet()
        assert service.outbox == []

    def test_action_routed_to_different_agent(self, service):
        source = wired_agent(service, "source", "/out")
        target = RippleAgent("target")
        service.register_agent(target)
        service.add_rule(
            Trigger(agent_id="source", path_prefix="/out"),
            Action("command", "target",
                   {"command": "mkdir", "src": "/mirrored"}),
        )
        source.fs.create("/out/f", b"")
        service.run_until_quiet()
        assert target.fs.is_dir("/mirrored")

    def test_rule_chain_pipelines(self, service):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.raw"),
            Action("command", "dev",
                   {"command": "copy", "dst": "{dir}/{stem}.stage1"}),
        )
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.stage1"),
            Action("command", "dev",
                   {"command": "copy", "dst": "{dir}/{stem}.stage2"}),
        )
        agent.fs.create("/in/x.raw", b"d")
        service.run_until_quiet()
        assert agent.fs.exists("/in/x.stage1")
        assert agent.fs.exists("/in/x.stage2")

    def test_multiple_rules_fire_for_one_event(self, service):
        agent = wired_agent(service)
        for index in range(3):
            service.add_rule(
                Trigger(agent_id="dev", path_prefix="/in"),
                Action("email", "dev", {"to": f"user{index}@lab"}),
            )
        agent.fs.create("/in/f", b"")
        service.run_until_quiet()
        assert len(service.outbox) == 3


class TestReliability:
    def test_report_retries_until_accepted(self, service):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        failures = {"left": 3}
        service.report_fault = (
            lambda agent_id, event: failures.__setitem__("left", failures["left"] - 1)
            or failures["left"] >= 0
        )
        agent.fs.create("/in/f", b"")
        service.run_until_quiet()
        assert agent.report_retries == 3
        assert agent.events_reported == 1
        assert len(service.outbox) == 1

    def test_report_abandoned_after_budget(self, service):
        agent = wired_agent(service)
        agent.max_report_retries = 2
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        service.report_fault = lambda agent_id, event: True  # always fail
        agent.fs.create("/in/f", b"")
        agent.drain_detection()
        assert agent.reports_abandoned == 1
        assert service.events_accepted == 0

    def test_failed_action_retried_then_succeeds(self, service):
        agent = wired_agent(service)
        attempts = {"n": 0}

        def flaky(agent, event, parameters):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        agent.register_callable("flaky", flaky)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("callable", "dev", {"function": "flaky"}),
        )
        agent.fs.create("/in/f", b"")
        service.run_until_quiet()
        assert attempts["n"] == 3
        assert service.actions_retried == 2
        assert not service.failed_actions
        assert service.results[-1].success

    def test_action_parked_after_attempt_budget(self, clock):
        service = RippleService(ServiceConfig(max_action_attempts=2), clock=clock)
        agent = wired_agent(service)

        def always_fails(agent, event, parameters):
            raise RuntimeError("permanent")

        agent.register_callable("dead", always_fails)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("callable", "dev", {"function": "dead"}),
        )
        agent.fs.create("/in/f", b"")
        service.run_until_quiet()
        assert len(service.failed_actions) == 1
        request, result = service.failed_actions[0]
        assert request.attempts == 2
        assert not result.success

    def test_queue_entry_redelivered_after_dispatch_crash(self, service, clock):
        """A dispatch failure (lambda crash) leaves the entry in the
        queue; the visibility timeout re-drives it."""
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        crashes = {"left": 1}

        def crash_once(request):
            if crashes["left"] > 0:
                crashes["left"] -= 1
                return True
            return False

        service.dispatch_fault = crash_once
        agent.fs.create("/in/f", b"")
        service.step()  # first lambda invocation crashes
        assert service.outbox == []
        clock.advance(service.config.visibility_timeout + 1)
        service.run_until_quiet()
        assert len(service.outbox) == 1

    def test_cleanup_redrives_faster_than_visibility_timeout(self, service, clock):
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        crashes = {"left": 1}
        service.dispatch_fault = (
            lambda request: crashes.__setitem__("left", crashes["left"] - 1)
            or crashes["left"] >= 0
        )
        agent.fs.create("/in/f", b"")
        service.step()
        assert service.event_queue.in_flight == 1
        clock.advance(service.config.cleanup_stall_threshold + 1)
        service.cleanup.sweep_once()
        assert service.event_queue.visible_depth == 1
        service.run_until_quiet()
        assert len(service.outbox) == 1


class TestLiveService:
    def test_threaded_service_processes_events(self):
        import time

        service = RippleService()
        agent = wired_agent(service)
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in"),
            Action("email", "dev", {"to": "a@b"}),
        )
        agent.attach_local_filesystem().start(poll_interval=0.001)
        service.start()
        try:
            agent.fs.create("/in/f", b"")
            deadline = time.time() + 3
            while not service.outbox and time.time() < deadline:
                time.sleep(0.01)
                agent.execute_pending()
        finally:
            service.stop()
            agent.observer.stop()
        assert len(service.outbox) == 1
