"""Tests for the inotify emulation."""

import pytest

from repro.errors import FileNotFound, NotADirectory, UnknownWatch, WatchLimitExceeded
from repro.fs.inotify import (
    IN_ATTRIB,
    IN_CLOSE_WRITE,
    IN_CREATE,
    IN_DELETE,
    IN_ISDIR,
    IN_MODIFY,
    IN_MOVED_FROM,
    IN_MOVED_TO,
    WATCH_MEMORY_BYTES,
    InotifyInstance,
    mask_names,
)
from repro.fs.memfs import MemoryFilesystem
from repro.util.clock import ManualClock


@pytest.fixture
def fs():
    return MemoryFilesystem(clock=ManualClock())


@pytest.fixture
def inotify(fs):
    return InotifyInstance(fs)


class TestWatchManagement:
    def test_add_watch_returns_descriptor(self, fs, inotify):
        fs.mkdir("/d")
        wd = inotify.add_watch("/d")
        assert wd >= 1
        assert inotify.path_for(wd) == "/d"

    def test_rewatch_same_path_returns_same_wd(self, fs, inotify):
        fs.mkdir("/d")
        assert inotify.add_watch("/d") == inotify.add_watch("/d")

    def test_watch_missing_path_rejected(self, inotify):
        with pytest.raises(FileNotFound):
            inotify.add_watch("/nope")

    def test_watch_file_rejected(self, fs, inotify):
        fs.create("/f")
        with pytest.raises(NotADirectory):
            inotify.add_watch("/f")

    def test_rm_watch(self, fs, inotify):
        fs.mkdir("/d")
        wd = inotify.add_watch("/d")
        inotify.rm_watch(wd)
        with pytest.raises(UnknownWatch):
            inotify.path_for(wd)

    def test_rm_unknown_watch_rejected(self, inotify):
        with pytest.raises(UnknownWatch):
            inotify.rm_watch(99)

    def test_watch_limit_enforced(self, fs):
        inotify = InotifyInstance(fs, max_user_watches=2)
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.mkdir("/c")
        inotify.add_watch("/a")
        inotify.add_watch("/b")
        with pytest.raises(WatchLimitExceeded):
            inotify.add_watch("/c")

    def test_kernel_memory_accounting(self, fs, inotify):
        for name in ("a", "b", "c"):
            fs.mkdir("/" + name)
            inotify.add_watch("/" + name)
        assert inotify.kernel_memory_bytes == 3 * WATCH_MEMORY_BYTES

    def test_paper_memory_arithmetic(self):
        # "over 512MB of memory is required to concurrently monitor the
        # default maximum (524,288) directories"
        assert 524_288 * WATCH_MEMORY_BYTES == 512 * 1024 * 1024


class TestEventDelivery:
    def test_create_event(self, fs, inotify):
        fs.mkdir("/d")
        wd = inotify.add_watch("/d")
        fs.create("/d/f.txt")
        events = inotify.read_events()
        assert len(events) == 1
        event = events[0]
        assert event.wd == wd
        assert event.mask & IN_CREATE
        assert event.name == "f.txt"
        assert not event.is_dir

    def test_mkdir_event_has_isdir(self, fs, inotify):
        fs.mkdir("/d")
        inotify.add_watch("/d")
        fs.mkdir("/d/sub")
        (event,) = inotify.read_events()
        assert event.mask & IN_CREATE
        assert event.is_dir

    def test_write_emits_modify_and_close_write(self, fs, inotify):
        fs.mkdir("/d")
        fs.create("/d/f")
        inotify.add_watch("/d")
        fs.write("/d/f", b"x")
        masks = [event.mask for event in inotify.read_events()]
        assert any(m & IN_MODIFY for m in masks)
        assert any(m & IN_CLOSE_WRITE for m in masks)

    def test_setattr_emits_attrib(self, fs, inotify):
        fs.mkdir("/d")
        fs.create("/d/f")
        inotify.add_watch("/d")
        fs.setattr("/d/f", mode=0o600)
        (event,) = inotify.read_events()
        assert event.mask & IN_ATTRIB

    def test_delete_event(self, fs, inotify):
        fs.mkdir("/d")
        fs.create("/d/f")
        inotify.add_watch("/d")
        fs.unlink("/d/f")
        (event,) = inotify.read_events()
        assert event.mask & IN_DELETE

    def test_rename_within_watched_dir_pairs_cookie(self, fs, inotify):
        fs.mkdir("/d")
        fs.create("/d/a")
        inotify.add_watch("/d")
        fs.rename("/d/a", "/d/b")
        moved_from, moved_to = inotify.read_events()
        assert moved_from.mask & IN_MOVED_FROM
        assert moved_to.mask & IN_MOVED_TO
        assert moved_from.cookie == moved_to.cookie != 0
        assert moved_from.name == "a"
        assert moved_to.name == "b"

    def test_rename_across_dirs_delivers_to_both_watches(self, fs, inotify):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.create("/src/f")
        wd_src = inotify.add_watch("/src")
        wd_dst = inotify.add_watch("/dst")
        fs.rename("/src/f", "/dst/f")
        events = inotify.read_events()
        assert {event.wd for event in events} == {wd_src, wd_dst}

    def test_events_only_for_watched_directory(self, fs, inotify):
        fs.mkdir("/watched")
        fs.mkdir("/other")
        inotify.add_watch("/watched")
        fs.create("/other/f")
        assert inotify.read_events() == []

    def test_watch_is_not_recursive(self, fs, inotify):
        fs.makedirs("/d/sub")
        inotify.add_watch("/d")
        fs.create("/d/sub/f")
        assert inotify.read_events() == []

    def test_mask_filters_event_kinds(self, fs, inotify):
        fs.mkdir("/d")
        inotify.add_watch("/d", mask=IN_DELETE)
        fs.create("/d/f")
        assert inotify.read_events() == []
        fs.unlink("/d/f")
        assert len(inotify.read_events()) == 1

    def test_read_events_with_limit(self, fs, inotify):
        fs.mkdir("/d")
        inotify.add_watch("/d")
        for index in range(5):
            fs.create(f"/d/f{index}")
        first = inotify.read_events(max_events=2)
        rest = inotify.read_events()
        assert len(first) == 2
        assert len(rest) == 3


class TestOverflow:
    def test_queue_overflow_drops_and_flags(self, fs):
        inotify = InotifyInstance(fs, max_queued_events=3)
        fs.mkdir("/d")
        inotify.add_watch("/d")
        for index in range(10):
            fs.create(f"/d/f{index}")
        events = inotify.read_events()
        assert len(events) == 4  # 3 real + 1 overflow marker
        assert events[-1].is_overflow
        assert inotify.dropped_events == 7

    def test_overflow_marker_emitted_once(self, fs):
        inotify = InotifyInstance(fs, max_queued_events=1)
        fs.mkdir("/d")
        inotify.add_watch("/d")
        for index in range(5):
            fs.create(f"/d/f{index}")
        events = inotify.read_events()
        assert sum(1 for event in events if event.is_overflow) == 1

    def test_queue_recovers_after_drain(self, fs):
        inotify = InotifyInstance(fs, max_queued_events=2)
        fs.mkdir("/d")
        inotify.add_watch("/d")
        fs.create("/d/a")
        fs.create("/d/b")
        fs.create("/d/c")  # dropped
        inotify.read_events()
        fs.create("/d/e")
        events = inotify.read_events()
        assert len(events) == 1
        assert events[0].name == "e"


class TestClose:
    def test_closed_instance_stops_observing(self, fs, inotify):
        fs.mkdir("/d")
        inotify.add_watch("/d")
        inotify.close()
        fs.create("/d/f")
        assert inotify.read_events() == []
        assert inotify.watch_count == 0


class TestMaskNames:
    def test_names_for_combined_mask(self):
        names = mask_names(IN_CREATE | IN_ISDIR)
        assert "IN_CREATE" in names
        assert "IN_ISDIR" in names
