"""Remaining behavioural coverage across small surfaces."""

import pytest

from repro.core.store import EventStore
from repro.fs.memfs import MemoryFilesystem, MutationKind
from repro.fs.watchdog import Observer, PatternMatchingEventHandler
from repro.msgq import Context
from repro.perf import CloudConfig, run_cloud
from repro.util.clock import ManualClock


class TestMemfsRemaining:
    @pytest.fixture
    def fs(self):
        return MemoryFilesystem(clock=ManualClock())

    def test_touch_creates_missing_file(self, fs):
        fs.touch("/new")
        assert fs.is_file("/new")
        assert fs.mutation_counts[MutationKind.CREATE] == 1

    def test_touch_existing_bumps_mtime_via_setattr(self, fs):
        clock = fs._clock
        fs.create("/f")
        clock.advance(5)
        fs.touch("/f")
        assert fs.stat("/f").mtime == 5
        assert fs.mutation_counts[MutationKind.SETATTR] == 1

    def test_append_grows_size_in_records(self, fs):
        sizes = []
        fs.add_hook(lambda record: sizes.append(record.size))
        fs.create("/f", b"ab")
        fs.append("/f", b"cd")
        fs.append("/f", b"ef")
        assert sizes == [2, 4, 6]

    def test_truncate_emits_truncate_kind(self, fs):
        kinds = []
        fs.add_hook(lambda record: kinds.append(record.kind))
        fs.create("/f", b"abcdef")
        fs.truncate("/f", 2)
        assert kinds[-1] is MutationKind.TRUNCATE

    def test_walk_from_file_rejected(self, fs):
        from repro.errors import NotADirectory

        fs.create("/f")
        with pytest.raises(NotADirectory):
            list(fs.walk("/f"))

    def test_stat_nlink_for_file_is_one(self, fs):
        fs.create("/f")
        assert fs.stat("/f").nlink == 1
        assert fs.stat("/f").is_file
        assert not fs.stat("/f").is_dir

    def test_is_checks_on_missing_path(self, fs):
        assert not fs.is_file("/nope")
        assert not fs.is_dir("/nope")
        assert not fs.exists("/nope")


class TestPatternHandlerOverflow:
    def test_overflow_always_dispatched(self):
        fs = MemoryFilesystem(clock=ManualClock())
        fs.mkdir("/w")
        observer = Observer(fs)
        observer.inotify.max_queued_events = 2
        overflows = []

        class Handler(PatternMatchingEventHandler):
            def on_overflow(self, event):
                overflows.append(event)

        observer.schedule(Handler(patterns=["*.never-matches"]), "/w")
        for index in range(10):
            fs.create(f"/w/f{index}")
        observer.drain()
        assert len(overflows) == 1  # overflow bypasses pattern filters


class TestSubSocketMultiplePrefixes:
    def test_union_of_prefixes(self):
        context = Context()
        publisher = context.pub().bind("inproc://multi")
        subscriber = (
            context.sub().connect("inproc://multi")
            .subscribe("a.").subscribe("b.")
        )
        for topic in ("a.1", "b.2", "c.3"):
            publisher.send(topic, topic)
        received = []
        from repro.errors import WouldBlock

        while True:
            try:
                received.append(subscriber.recv(block=False)[0])
            except WouldBlock:
                break
        assert received == ["a.1", "b.2"]
        assert publisher.published == 3


class TestEventStorePersistenceEdges:
    def test_save_empty_store(self, tmp_path):
        store = EventStore()
        path = str(tmp_path / "empty.jsonl")
        assert store.save(path) == 0
        restored = EventStore.load(path)
        assert len(restored) == 0
        assert restored.last_seq == 0

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            EventStore.load(str(tmp_path / "nope.jsonl"))


class TestCloudLatency:
    def test_latency_percentiles_sane_below_capacity(self):
        result = run_cloud(
            CloudConfig(arrival_rate=100.0, service_seconds=1e-3,
                        concurrency=2, duration=10.0)
        )
        assert result.latency.total == result.processed
        # Under light load latency ~ service time.
        assert result.latency.mean == pytest.approx(1e-3, rel=0.5)
        assert result.latency.percentile(0.5) <= result.latency.percentile(0.99)


class TestHarnessReportObjects:
    def test_figure3_peak_day_identifies_maximum(self):
        from repro.harness import experiment_figure3

        report = experiment_figure3(days=12, base_files=20_000, seed=3)
        totals = [c + m for c, m in zip(report.created, report.modified)]
        assert totals[report.days.index(report.peak_day)] == max(totals)

    def test_throughput_report_paper_shortfall(self):
        from repro.harness import experiment_throughput
        from repro.perf import AWS

        report = experiment_throughput(AWS, duration=2.0)
        expected = 100.0 * (1 - 1053.0 / 1366.0)
        assert report.paper_shortfall_percent == pytest.approx(expected)

    def test_table2_report_render_has_ratio_column(self):
        from repro.harness import experiment_table2
        from repro.perf import AWS

        text = experiment_table2(AWS, n_files=100).render()
        assert "1.000x" in text
