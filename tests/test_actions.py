"""Tests for action executors."""

import pytest

from repro.core.events import EventType, FileEvent
from repro.errors import ActionError
from repro.ripple import RippleAgent, RippleService
from repro.ripple.actions import (
    ActionRequest,
    ExecutorRegistry,
    default_registry,
    execute_command,
    execute_container,
    execute_email,
    execute_transfer,
)


def event_for(path):
    return FileEvent(
        event_type=EventType.CREATED, path=path, is_dir=False, timestamp=0.0,
        name=path.rsplit("/", 1)[-1], source="inotify",
    )


def request_for(action_type, parameters, path="/in/data.txt", agent_id="a"):
    return ActionRequest(
        action_type=action_type, agent_id=agent_id, parameters=parameters,
        event=event_for(path), rule_id=1,
    )


@pytest.fixture
def service():
    return RippleService()


@pytest.fixture
def agent(service):
    agent = RippleAgent("a")
    service.register_agent(agent)
    agent.fs.makedirs("/in")
    agent.fs.create("/in/data.txt", b"payload")
    return agent


class TestCommandExecutor:
    def test_copy(self, agent):
        result = execute_command(
            request_for("command", {"command": "copy", "dst": "/in/copy.txt"}),
            agent,
        )
        assert result.success
        assert agent.fs.read("/in/copy.txt") == b"payload"

    def test_move(self, agent):
        execute_command(
            request_for("command", {"command": "move", "dst": "/in/moved.txt"}),
            agent,
        )
        assert not agent.fs.exists("/in/data.txt")
        assert agent.fs.exists("/in/moved.txt")

    def test_delete(self, agent):
        execute_command(request_for("command", {"command": "delete"}), agent)
        assert not agent.fs.exists("/in/data.txt")

    def test_checksum_writes_digest_file(self, agent):
        import hashlib

        result = execute_command(
            request_for(
                "command",
                {"command": "checksum", "dst": "/in/{stem}.sha"},
            ),
            agent,
        )
        expected = hashlib.sha256(b"payload").hexdigest()
        assert result.output == expected
        assert expected.encode() in agent.fs.read("/in/data.sha")

    def test_mkdir(self, agent):
        execute_command(
            request_for("command", {"command": "mkdir", "src": "/new/deep"}),
            agent,
        )
        assert agent.fs.is_dir("/new/deep")

    def test_template_expansion(self, agent):
        result = execute_command(
            request_for(
                "command",
                {"command": "copy", "dst": "{dir}/{stem}_backup.txt"},
            ),
            agent,
        )
        assert agent.fs.exists("/in/data_backup.txt")
        assert "data_backup" in result.detail

    def test_copy_without_dst_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_command(request_for("command", {"command": "copy"}), agent)

    def test_unknown_command_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_command(request_for("command", {"command": "fly"}), agent)


class TestTransferExecutor:
    def test_transfer_copies_across_agents(self, service, agent):
        destination = RippleAgent("b")
        service.register_agent(destination)
        result = execute_transfer(
            request_for(
                "transfer",
                {"destination_agent": "b", "destination_path": "/inbox/{name}"},
            ),
            agent,
        )
        assert result.success
        assert destination.fs.read("/inbox/data.txt") == b"payload"
        assert result.output == {"bytes": 7}

    def test_transfer_to_unknown_agent_fails(self, service, agent):
        from repro.errors import AgentNotFound

        with pytest.raises(AgentNotFound):
            execute_transfer(
                request_for(
                    "transfer",
                    {"destination_agent": "ghost",
                     "destination_path": "/x/{name}"},
                ),
                agent,
            )

    def test_missing_parameters_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_transfer(request_for("transfer", {}), agent)

    def test_unresolved_source_rejected(self, service):
        agent = RippleAgent("u")
        service.register_agent(agent)
        bad_event = FileEvent(
            event_type=EventType.CREATED, path=None, is_dir=False,
            timestamp=0.0, name="x", source="lustre",
        )
        request = ActionRequest(
            "transfer", "u",
            {"destination_agent": "u", "destination_path": "/y"},
            bad_event, rule_id=1,
        )
        with pytest.raises(ActionError):
            execute_transfer(request, agent)


class TestEmailExecutor:
    def test_email_lands_in_outbox(self, service, agent):
        execute_email(
            request_for(
                "email",
                {"to": "x@y.z", "subject": "got {name}", "body": "see {path}"},
            ),
            agent,
        )
        (mail,) = service.outbox
        assert mail["to"] == "x@y.z"
        assert mail["subject"] == "got data.txt"
        assert mail["body"] == "see /in/data.txt"

    def test_missing_recipient_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_email(request_for("email", {}), agent)


class TestContainerExecutor:
    def test_runs_registered_image(self, agent):
        def image(agent, event, parameters):
            return f"processed {event.name} with {parameters['mode']}"

        agent.register_container("proc", image)
        result = execute_container(
            request_for("container", {"image": "proc", "mode": "fast"}),
            agent,
        )
        assert result.output == "processed data.txt with fast"

    def test_unknown_image_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_container(request_for("container", {"image": "ghost"}), agent)

    def test_missing_image_parameter_rejected(self, agent):
        with pytest.raises(ActionError):
            execute_container(request_for("container", {}), agent)


class TestRegistry:
    def test_default_registry_covers_paper_actions(self):
        registry = default_registry()
        assert set(registry.known_types()) == {
            "transfer", "email", "container", "command", "callable",
        }

    def test_custom_executor_registration(self, agent):
        registry = ExecutorRegistry()
        calls = []
        registry.register("command", lambda req, agent: calls.append(req))
        registry.get("command")(request_for("command", {}), agent)
        assert len(calls) == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(ActionError):
            default_registry().get("nope")
