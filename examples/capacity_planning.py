#!/usr/bin/env python
"""Capacity planning: can the monitor keep up with Aurora? (paper §5.3)

The paper's closing argument runs three analyses; this example chains
them the way a facility operator would:

1. **Demand** — difference 36 days of (synthetic) tlproject2 dumps to
   find peak daily activity, spread it over 24 h and a worst-case 8 h
   window, and extrapolate linearly to Aurora's 150 PB.
2. **Supply** — run the monitor pipeline model on the Iota profile (the
   same hardware generation as Aurora's store) to find sustained
   throughput, with and without the batching/caching fix and with the
   MDS count Aurora would actually have.
3. **Verdict** — compare, with headroom factors.

Run:  python examples/capacity_planning.py
"""

from repro.harness import experiment_figure3
from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def main() -> None:
    # -- 1. demand ---------------------------------------------------------
    demand = experiment_figure3()
    aurora_rate = demand.analysis.extrapolate()
    print("demand (from dump differencing):")
    print(f"  peak daily differences : {demand.scaled_peak_diffs:,}")
    print(f"  averaged over 24h      : {demand.analysis.events_per_second_24h:,.0f} ev/s")
    print(f"  8-hour worst case      : {demand.analysis.events_per_second_8h:,.0f} ev/s")
    print(f"  Aurora 150PB estimate  : {aurora_rate:,.0f} ev/s")
    print()

    # -- 2. supply -----------------------------------------------------------
    scenarios = [
        ("paper config (1 MDS, per-event d2path)",
         PipelineConfig(profile=IOTA, duration=20.0)),
        ("batching + caching fix",
         PipelineConfig(profile=IOTA, duration=20.0,
                        batch_size=64, cache_size=4096)),
        ("4 active MDS (Aurora-like metadata tier)",
         PipelineConfig(profile=IOTA, duration=20.0, num_mds=4)),
    ]
    rows = []
    supplies = {}
    for label, config in scenarios:
        result = run_pipeline(config)
        supplies[label] = result.delivered_rate
        rows.append(
            (label, f"{result.delivered_rate:,.0f}",
             f"{result.delivered_rate / aurora_rate:,.1f}x")
        )
    print(render_table(
        ["monitor configuration", "sustained ev/s", "headroom vs Aurora demand"],
        rows, title="supply (pipeline model, Iota hardware profile)",
    ))
    print()

    # -- 3. verdict ------------------------------------------------------------
    worst_supply = min(supplies.values())
    print(f"verdict: even the paper's unoptimised configuration sustains "
          f"{worst_supply:,.0f} ev/s,")
    print(f"         {worst_supply / aurora_rate:,.1f}x the projected Aurora demand "
          f"of {aurora_rate:,.0f} ev/s —")
    print("         matching the paper's conclusion that the monitor meets the")
    print("         predicted needs of the forthcoming 150PB Aurora file system.")
    assert worst_supply > 2 * aurora_rate
    print("capacity planning OK")


if __name__ == "__main__":
    main()
