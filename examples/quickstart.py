#!/usr/bin/env python
"""Quickstart: monitor a Lustre filesystem and react to events with Ripple.

This walks the library's two halves end to end in under a minute:

1. build an in-memory Lustre filesystem (1 MDS, like the paper's AWS
   testbed);
2. attach the scalable monitor (collector -> aggregator -> subscriber);
3. register a Ripple agent fed by the monitor and an
   If-Trigger-Then-Action rule;
4. create some files and watch the rule fire.

Run:  python examples/quickstart.py
"""

from repro.core import LustreMonitor
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger


def main() -> None:
    # 1. The storage substrate: a Lustre filesystem with one MDS.
    fs = LustreFilesystem(num_mds=1)
    fs.makedirs("/project/ingest")

    # 2. The scalable monitor: one Collector per MDS feeding an
    #    Aggregator that publishes a site-wide event stream.
    monitor = LustreMonitor(fs)

    # Subscribe a plain consumer so we can see the raw stream too.
    raw_events = []
    monitor.subscribe(lambda seq, ev: raw_events.append(ev), name="logger")

    # 3. Ripple: a cloud service, an agent on the Lustre resource, and a
    #    rule that checksums every new .dat file that lands in ingest/.
    service = RippleService()
    agent = RippleAgent("hpc-store", filesystem=fs)
    service.register_agent(agent)
    agent.attach_lustre_monitor(monitor)

    service.add_rule(
        Trigger(agent_id="hpc-store", path_prefix="/project/ingest",
                name_pattern="*.dat"),
        Action("command", "hpc-store",
               {"command": "checksum", "dst": "{dir}/{stem}.sha256"}),
        name="checksum-on-ingest",
    )

    # 4. Generate activity and pump the pipeline deterministically.
    for index in range(3):
        fs.create(f"/project/ingest/sample_{index}.dat", size=4096)
    monitor.drain()          # changelog -> aggregator -> agent
    service.run_until_quiet()  # queue -> lambda -> action execution
    monitor.drain()          # pick up events produced by the actions
    service.run_until_quiet()

    print(f"monitor delivered {len(raw_events)} raw events:")
    for event in raw_events:
        print(f"  {event.record_type}  {event.event_type.value:<8}  {event.path}")
    print()
    print("ingest directory now contains:")
    for name in fs.listdir("/project/ingest"):
        print(f"  {name}")
    print()
    print(f"actions executed: {agent.actions_executed}, "
          f"results recorded: {len(service.results)}")
    checksums = [n for n in fs.listdir("/project/ingest") if n.endswith(".sha256")]
    assert len(checksums) == 3, "expected one checksum per ingested file"
    print("quickstart OK")


if __name__ == "__main__":
    main()
