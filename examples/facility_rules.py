#!/usr/bin/env python
"""Facility-wide automation: relays, the rule DSL and a query client.

Puts the library's extension features together the way a computing
facility would deploy them:

* two Lustre filesystems (``home`` and ``scratch``), each with its own
  scalable monitor;
* a **facility relay** merging both event streams into one;
* rules written in the **WHEN/THEN DSL** (the way users would actually
  configure them) driving a Ripple agent fed from the merged stream;
* a **MonitorClient** answering operator questions from the relay's
  historic catalog.

Run:  python examples/facility_rules.py
"""

from repro.core import AggregatorConfig, LustreMonitor, MonitorConfig
from repro.core.client import MonitorClient
from repro.core.consumer import Consumer
from repro.core.relay import facility_relay
from repro.lustre import LustreFilesystem
from repro.ripple import RippleAgent, RippleService
from repro.ripple.dsl import install_rules

RULES = """
# archive finished results from scratch
WHEN created OF *.result UNDER /jobs ON facility
THEN command ON facility WITH command=copy dst=/archive/{name}

# purge core dumps anywhere, site-wide
WHEN created OF core.* UNDER / ON facility
THEN command ON facility WITH command=delete src={path}
"""


def build_monitor(fs, suffix):
    return LustreMonitor(
        fs,
        MonitorConfig(
            aggregator=AggregatorConfig(
                inbound_endpoint=f"inproc://agg-{suffix}",
                publish_endpoint=f"inproc://events-{suffix}",
                api_endpoint=f"inproc://api-{suffix}",
            )
        ),
    )


def main() -> None:
    home = LustreFilesystem(num_mds=1)
    scratch = LustreFilesystem(num_mds=2)
    for fs in (home, scratch):
        fs.makedirs("/jobs")
        fs.makedirs("/archive")
    home_monitor = build_monitor(home, "home")
    scratch_monitor = build_monitor(scratch, "scratch")

    relay = facility_relay(
        [home_monitor, scratch_monitor], names=["home", "scratch"]
    )

    # The agent executes on scratch (where the data lives) but *detects*
    # through the merged facility stream.
    service = RippleService()
    agent = RippleAgent("facility", filesystem=scratch)
    service.register_agent(agent)
    consumer = Consumer(
        relay.context,
        lambda _seq, event: agent.ingest_event(event),
        config=relay.config,
        name="facility-agent",
    )
    rules = install_rules(service, RULES)
    print("installed rules:")
    for rule in rules:
        print(f"  {rule.describe()}")
    print()

    # --- activity on both filesystems -----------------------------------
    with scratch.job("sim.8841"):
        scratch.create("/jobs/run1.result", size=4096)
        scratch.create("/jobs/core.8841", size=1 << 20)
    home.create("/jobs/notes.txt", size=128)  # matches no rule

    def pump():
        home_monitor.drain()
        scratch_monitor.drain()
        relay.pump_once()
        consumer.poll_once()
        service.run_until_quiet()

    for _ in range(4):
        pump()

    print("scratch /archive :", scratch.listdir("/archive"))
    print("scratch /jobs    :", scratch.listdir("/jobs"))
    assert scratch.listdir("/archive") == ["run1.result"]
    assert "core.8841" not in scratch.listdir("/jobs")

    # --- operator queries over the merged history -------------------------
    client = MonitorClient(relay.context, relay.config)
    client.api_server = relay
    summary = client.activity_summary("/")
    print("facility activity summary:", summary)
    jobs = [
        event.jobid
        for _seq, event in client.query(path_prefix="/jobs")
        if event.jobid
    ]
    print("job ids seen under /jobs:", sorted(set(jobs)))
    assert "sim.8841" in jobs
    assert summary["created"] >= 3
    print("facility rules OK")


if __name__ == "__main__":
    main()
