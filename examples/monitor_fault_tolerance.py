#!/usr/bin/env python
"""Fault tolerance walk-through: what the monitor and Ripple guarantee.

Demonstrates the reliability mechanisms the paper describes:

1. **ChangeLog purge pointers** — a collector crash between read and
   clear re-delivers records; nothing is lost (at-least-once).
2. **The rotating catalog + historic API** — a consumer that joins late
   (or drops messages) catches up via the Aggregator's API.
3. **Ripple report retries + the SQS/cleanup loop** — injected service
   failures are absorbed by agent retries; injected action failures are
   retried by the service up to its attempt budget.

Run:  python examples/monitor_fault_tolerance.py
"""

from repro.core import LustreMonitor
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger


def demo_purge_pointer_replay() -> None:
    print("-- 1. collector crash/replay (purge pointers)")
    fs = LustreFilesystem()
    fs.makedirs("/d")
    changelog = fs.changelogs()[0]
    user = changelog.register_user()
    for index in range(5):
        fs.create(f"/d/f{index}")
    # Read but "crash" before clearing: records stay.
    first_read = changelog.read(user)
    assert len(first_read) == 5
    replay = changelog.read(user)
    assert [r.index for r in replay] == [r.index for r in first_read]
    print(f"   re-read after crash delivered the same {len(replay)} records")
    changelog.clear(user, replay[-1].index)
    assert changelog.read(user) == []
    assert changelog.backlog == 0
    print("   after clear: backlog purged, nothing re-delivered")


def demo_consumer_catch_up() -> None:
    print("-- 2. late subscriber catch-up (rotating catalog + API)")
    fs = LustreFilesystem()
    fs.makedirs("/d")
    monitor = LustreMonitor(fs)
    for index in range(10):
        fs.create(f"/d/f{index}")
    monitor.drain()  # events flow while nobody is subscribed
    late_events = []
    consumer = monitor.subscribe(
        lambda seq, ev: late_events.append(seq), name="late-joiner"
    )
    assert not late_events, "slow joiner misses the live stream"
    missed = consumer.catch_up(api_server=monitor.aggregator)
    print(f"   late joiner recovered {missed} events via the historic API")
    assert missed == 10
    monitor.shutdown()


def demo_ripple_retries() -> None:
    print("-- 3. Ripple reliability (report retries + action retries)")
    service = RippleService()
    agent = RippleAgent("dev")
    service.register_agent(agent)
    agent.attach_local_filesystem()
    agent.fs.makedirs("/in")

    # Fail the first two report attempts of every event.
    failures = {"remaining": 2}

    def flaky_report(_agent_id, _event):
        if failures["remaining"] > 0:
            failures["remaining"] -= 1
            return True
        return False

    service.report_fault = flaky_report

    # An action that fails once, then succeeds.
    attempts = {"n": 0}

    def flaky_analysis(agent, event, parameters):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise RuntimeError("transient failure")
        agent.write_file("/in/done.marker", b"ok")
        return "done"

    agent.register_callable("analysis", flaky_analysis)
    service.add_rule(
        Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.csv"),
        Action("callable", "dev", {"function": "analysis"}),
        name="flaky-analysis",
    )

    agent.fs.create("/in/data.csv", b"a,b\n1,2\n")
    service.run_until_quiet()

    print(f"   report retries: {agent.report_retries} (then accepted)")
    print(f"   action attempts: {attempts['n']} "
          f"(service retried {service.actions_retried} time(s))")
    assert agent.report_retries == 2
    assert attempts["n"] == 2
    assert agent.fs.exists("/in/done.marker")
    assert not service.failed_actions


def main() -> None:
    demo_purge_pointer_replay()
    demo_consumer_catch_up()
    demo_ripple_retries()
    print("fault tolerance OK")


if __name__ == "__main__":
    main()
