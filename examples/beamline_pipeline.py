#!/usr/bin/env python
"""Beamline scenario: automated analysis + replication across resources.

Reproduces the paper's motivating use case (§1/§3): "when files appear
in a specific directory of their laboratory machine they are
automatically analyzed and the results replicated to their personal
device."  Three agents participate:

* ``beamline``  — the lab acquisition machine (local fs, watchdog
  detection), where the instrument writes raw ``.tiff`` frames;
* ``cluster``   — an HPC Lustre store monitored by the scalable monitor,
  where frames are staged and analysed by a container;
* ``laptop``    — the scientist's personal device receiving results and
  an email notification.

The rule chain (a Ripple pipeline):

1. new ``*.tiff`` on beamline  -> transfer to cluster ``/staging``
2. new ``*.tiff`` on cluster   -> run ``reconstruct`` container,
   producing ``*.h5`` in ``/results``
3. new ``*.h5`` on cluster     -> transfer to laptop ``/home/inbox``
4. new file on laptop inbox    -> email the PI

Run:  python examples/beamline_pipeline.py
"""

from repro.core import LustreMonitor
from repro.core.events import EventType
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger


def reconstruct_image(agent, event, parameters):
    """A stand-in tomographic reconstruction 'container image'.

    Reads the raw frame, pretends to reconstruct it, writes an HDF5-ish
    result file into /results.
    """
    raw = agent.read_file(event.path)
    result_path = f"/results/{event.name.rsplit('.', 1)[0]}.h5"
    agent.write_file(result_path, b"HDF5" + raw[:16])
    return {"input_bytes": len(raw), "output": result_path}


def main() -> None:
    service = RippleService()

    beamline = RippleAgent("beamline")
    beamline.attach_local_filesystem()
    beamline.fs.makedirs("/detector/run42")

    cluster_fs = LustreFilesystem(num_mds=2)
    cluster_fs.makedirs("/staging")
    cluster_fs.makedirs("/results")
    cluster = RippleAgent("cluster", filesystem=cluster_fs)
    cluster.register_container("reconstruct", reconstruct_image)
    monitor = LustreMonitor(cluster_fs)

    laptop = RippleAgent("laptop")
    laptop.attach_local_filesystem()
    laptop.fs.makedirs("/home/inbox")

    for agent in (beamline, cluster, laptop):
        service.register_agent(agent)
    cluster.attach_lustre_monitor(monitor)

    # -- the rule chain ---------------------------------------------------
    service.add_rule(
        Trigger(agent_id="beamline", path_prefix="/detector/run42",
                name_pattern="*.tiff"),
        Action("transfer", "beamline",
               {"destination_agent": "cluster",
                "destination_path": "/staging/{name}"}),
        name="stage-raw-frames",
    )
    service.add_rule(
        Trigger(agent_id="cluster", path_prefix="/staging",
                name_pattern="*.tiff"),
        Action("container", "cluster", {"image": "reconstruct"}),
        name="reconstruct-frames",
    )
    service.add_rule(
        Trigger(agent_id="cluster", path_prefix="/results",
                name_pattern="*.h5"),
        Action("transfer", "cluster",
               {"destination_agent": "laptop",
                "destination_path": "/home/inbox/{name}"}),
        name="replicate-results",
    )
    service.add_rule(
        Trigger(agent_id="laptop", path_prefix="/home/inbox",
                event_types=frozenset({EventType.CREATED})),
        Action("email", "laptop",
               {"to": "pi@university.edu",
                "subject": "results ready: {name}",
                "body": "Reconstructed output {path} has arrived."}),
        name="notify-pi",
    )

    # -- the instrument writes frames --------------------------------------
    for frame in range(4):
        beamline.fs.create(f"/detector/run42/frame_{frame:03d}.tiff",
                           b"\x49\x49*\x00" + bytes(64))

    # Pump until the whole cascade settles (detection is asynchronous on
    # the cluster, so interleave monitor drains with service rounds).
    for _ in range(8):
        monitor.drain()
        service.run_until_quiet()

    print("cluster /staging :", cluster_fs.listdir("/staging"))
    print("cluster /results :", cluster_fs.listdir("/results"))
    print("laptop  /home/inbox :", laptop.fs.listdir("/home/inbox"))
    print(f"emails sent: {len(service.outbox)}")
    for mail in service.outbox:
        print(f"  -> {mail['to']}: {mail['subject']}")

    assert len(cluster_fs.listdir("/staging")) == 4
    assert len(cluster_fs.listdir("/results")) == 4
    assert len(laptop.fs.listdir("/home/inbox")) == 4
    assert len(service.outbox) == 4
    print("beamline pipeline OK")


if __name__ == "__main__":
    main()
