#!/usr/bin/env python
"""Site-wide purge policy: the workload inotify-based Ripple cannot do.

The paper (§3, Limitations): "Ripple cannot enforce rules which are
applied to many directories, such as site-wide purging policies" when it
relies on targeted inotify watchers.  With the Lustre monitor the agent
consumes *site-wide* events without placing a single watcher, so a
purge-scratch-files policy spanning every project directory becomes one
rule.

This example also contrasts with the Robinhood baseline: the same purge
expressed as a centralized bulk policy run, showing both approaches
operating over identical activity (and what each costs).

Run:  python examples/site_purge.py
"""

from repro.baselines import RobinhoodCollector, RobinhoodPolicy
from repro.core import LustreMonitor
from repro.core.events import EventType
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger
from repro.util.clock import ManualClock


def populate(fs: LustreFilesystem, n_projects: int = 5, files_each: int = 6) -> None:
    """Create project trees mixing keep-files and scratch .tmp files."""
    for project in range(n_projects):
        base = f"/projects/p{project:02d}/scratch"
        fs.makedirs(base)
        for index in range(files_each):
            fs.create(f"{base}/job_{index}.out", size=1024)
            fs.create(f"{base}/job_{index}.tmp", size=4096)


def main() -> None:
    clock = ManualClock()
    fs = LustreFilesystem(num_mds=2, clock=clock)

    # Robinhood baseline registers BEFORE activity so its DB sees it all.
    robinhood = RobinhoodCollector(fs, clock=clock)

    monitor = LustreMonitor(fs)
    service = RippleService(clock=clock)
    agent = RippleAgent("site-store", filesystem=fs)
    service.register_agent(agent)
    agent.attach_lustre_monitor(monitor)

    # ONE rule purges *.tmp anywhere under /projects, site-wide.
    service.add_rule(
        Trigger(agent_id="site-store", path_prefix="/projects",
                name_pattern="*.tmp",
                event_types=frozenset({EventType.CREATED})),
        Action("command", "site-store", {"command": "delete", "src": "{path}"}),
        name="purge-scratch-sitewide",
    )

    populate(fs)
    clock.advance(3600.0)  # an hour of simulated time passes

    # --- Ripple + monitor path: events stream in, the rule fires --------
    monitor.drain()
    service.run_until_quiet()
    remaining_tmp = [
        f"{dirpath}/{name}"
        for dirpath, _dirs, files in fs.walk("/projects")
        for name in files
        if name.endswith(".tmp")
    ]
    print(f"[ripple]    tmp files remaining after streaming purge: "
          f"{len(remaining_tmp)}")
    print(f"[ripple]    actions executed: {agent.actions_executed}, "
          f"watchers placed: 0 (site-wide via ChangeLog)")

    # --- Robinhood path: bulk scan + policy run ----------------------------
    robinhood.scan_once()
    run = robinhood.run_policy(
        RobinhoodPolicy(
            name="purge-tmp",
            name_pattern="*.tmp",
            older_than=0.0,
            # The Ripple rule already deleted them; Robinhood's sweep
            # shows how the same policy would act (on a fresh tree it
            # would unlink; here we just count matches).
        )
    )
    print(f"[robinhood] database entries: {len(robinhood.database)}, "
          f"policy scanned {run.scanned}, matched {run.matched}")
    report = robinhood.usage_report()
    print(f"[robinhood] usage report: {report}")

    assert not remaining_tmp, "site-wide purge should have removed every .tmp"
    # Robinhood saw the deletions through the same changelogs, so its DB
    # no longer contains the purged files either.
    assert run.matched == 0
    print("site purge OK")


if __name__ == "__main__":
    main()
