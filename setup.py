"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
``setup.py develop``, which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
